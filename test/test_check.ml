(* ECSan: the entry-consistency sanitizer.

   Four layers of tests:
   - the five paper applications (plus water's lock-per-molecule sync
     style, which the scaled suite does not exercise) must be
     sanitizer-clean at smoke scale;
   - the example programs must be sanitizer-clean when run with
     MIDWAY_ECSAN=1, and examples/races.exe must find its own bugs;
   - five seeded-race programs (mirroring examples/races.ml) must each
     report exactly the intended diagnostic class, processor and range;
   - unit tests for the checker's own algebra (intervals, binding index,
     deduplication). *)

module Config = Midway.Config
module Runtime = Midway.Runtime
module Range = Midway.Range
module Binding_index = Midway_check.Binding_index
module Diag = Midway_check.Diag
module Report = Midway_check.Report
module Check = Midway_check.Check
module Suite = Midway_report.Suite
module Outcome = Midway_apps.Outcome

let ecsan_cfg backend ~nprocs = { (Config.make backend ~nprocs) with Config.ecsan = true }

(* --- the five applications are sanitizer-clean --------------------------- *)

let clean_outcome (outcome : Outcome.t) =
  Alcotest.(check bool) "oracle ok" true outcome.Outcome.ok;
  (match Runtime.check_invariants outcome.Outcome.machine with
  | [] -> ()
  | v -> Alcotest.failf "invariants: %s" (String.concat "; " v));
  let rep = Runtime.check_report outcome.Outcome.machine in
  Alcotest.(check bool) "ecsan armed" true rep.Report.enabled;
  if Report.has_violations rep then Alcotest.failf "ECSan violations:\n%s" (Report.render rep)

let app_clean app backend nprocs scale () =
  let cfg = ecsan_cfg backend ~nprocs in
  clean_outcome (Suite.run_app app cfg ~scale)

let app_cases =
  List.concat_map
    (fun app ->
      List.map
        (fun (backend, nprocs) ->
          Alcotest.test_case
            (Printf.sprintf "%s %s n=%d clean" (Suite.app_name app)
               (Config.backend_name backend) nprocs)
            `Slow
            (app_clean app backend nprocs 0.05))
        [ (Config.Rt, 4); (Config.Vm, 4); (Config.Rt, 8) ])
    Suite.apps
  @ [
      (* the scaled suite always runs water with barrier phases; the
         lock-per-molecule style takes a different synchronization path
         through the checker and must be clean too *)
      Alcotest.test_case "water molecule-locks rt n=4 clean" `Slow (fun () ->
          clean_outcome
            (Midway_apps.Water.run (ecsan_cfg Config.Rt ~nprocs:4)
               {
                 Midway_apps.Water.molecules = 24;
                 steps = 2;
                 sync = Midway_apps.Water.Molecule_locks;
               }));
    ]

(* --- the examples are sanitizer-clean (subprocess, MIDWAY_ECSAN=1) ------- *)

(* the test binary lives in _build/default/test; the examples are its
   siblings in _build/default/examples, wherever dune runs us from *)
let example_exe name =
  Filename.concat
    (Filename.concat (Filename.dirname (Filename.dirname Sys.executable_name)) "examples")
    (name ^ ".exe")

let example_case name =
  Alcotest.test_case (name ^ " clean under MIDWAY_ECSAN") `Slow (fun () ->
      let cmd = Printf.sprintf "MIDWAY_ECSAN=1 %s >/dev/null 2>&1" (example_exe name) in
      Alcotest.(check int) (name ^ " exits 0") 0 (Sys.command cmd))

let example_cases =
  List.map example_case [ "quickstart"; "task_queue"; "stencil"; "false_sharing"; "readers_writer" ]
  @ [
      Alcotest.test_case "races.exe finds all five seeded races" `Slow (fun () ->
          Alcotest.(check int) "races exits 0" 0
            (Sys.command (Printf.sprintf "%s >/dev/null 2>&1" (example_exe "races"))));
    ]

(* --- seeded races report exactly the intended diagnostic ----------------- *)

module R = Runtime

let race_cfg = { (Config.make Config.Rt ~nprocs:2) with Config.ecsan = true }

(* p1 stores to lock-bound data without acquiring the lock *)
let seed_unsynchronized () =
  let machine = R.create race_cfg in
  let data = R.alloc machine 8 in
  let lock = R.new_lock machine [ Range.v data 8 ] in
  let start = R.new_barrier machine [] in
  R.run machine (fun c ->
      if R.id c = 0 then begin
        R.acquire c lock;
        R.write_int c data 1;
        R.release c lock;
        R.barrier c start
      end
      else begin
        R.barrier c start;
        R.write_int c data 2
      end);
  (machine, data, 1)

(* p1 takes the lock in read mode and stores through it anyway *)
let seed_shared_write () =
  let machine = R.create race_cfg in
  let data = R.alloc machine 8 in
  let lock = R.new_lock machine [ Range.v data 8 ] in
  let start = R.new_barrier machine [] in
  R.run machine (fun c ->
      if R.id c = 0 then begin
        R.acquire c lock;
        R.write_int c data 1;
        R.release c lock;
        R.barrier c start
      end
      else begin
        R.barrier c start;
        R.acquire_read c lock;
        ignore (R.read_int c data);
        R.write_int c data 2
      end;
      if R.id c = 1 then R.release c lock);
  (machine, data, 1)

(* two processors share data that nothing ever binds *)
let seed_unbound () =
  let machine = R.create race_cfg in
  let data = R.alloc machine 8 in
  let start = R.new_barrier machine [] in
  R.run machine (fun c ->
      if R.id c = 0 then begin
        R.write_int c data 41;
        R.barrier c start
      end
      else begin
        R.barrier c start;
        ignore (R.read_int c data)
      end);
  (machine, data, 1)

(* p0 stores through write_int_private but p1 later reads the data *)
let seed_misclassified () =
  let machine = R.create race_cfg in
  let data = R.alloc machine 8 in
  let start = R.new_barrier machine [] in
  R.run machine (fun c ->
      if R.id c = 0 then begin
        R.write_int_private c data 7;
        R.barrier c start
      end
      else begin
        R.barrier c start;
        ignore (R.read_int c data)
      end);
  (machine, data, 0)

(* p1 rebinds the lock to a prefix, then writes the rebound-away suffix *)
let seed_stale () =
  let machine = R.create race_cfg in
  let data = R.alloc machine 16 in
  let lock = R.new_lock machine [ Range.v data 16 ] in
  let start = R.new_barrier machine [] in
  R.run machine (fun c ->
      if R.id c = 0 then begin
        R.acquire c lock;
        R.write_int c data 1;
        R.write_int c (data + 8) 2;
        R.release c lock;
        R.barrier c start
      end
      else begin
        R.barrier c start;
        R.acquire c lock;
        R.rebind c lock [ Range.v data 8 ];
        R.write_int c data 10;
        R.write_int c (data + 8) 20;
        R.release c lock
      end);
  (machine, data + 8, 1)

let seeded_case name expected_cls build =
  Alcotest.test_case name `Quick (fun () ->
      let machine, addr, proc = build () in
      let rep = R.check_report machine in
      match rep.Report.violations with
      | [ v ] ->
          Alcotest.(check string)
            "diagnostic class" (Diag.class_name expected_cls) (Diag.class_name v.Diag.cls);
          Alcotest.(check int) "processor at fault" proc v.Diag.proc;
          Alcotest.(check bool)
            (Printf.sprintf "hull [%#x,%#x) covers %#x" v.Diag.lo v.Diag.hi addr)
            true
            (v.Diag.lo <= addr && addr < v.Diag.hi)
      | vs ->
          Alcotest.failf "wanted exactly one violation, got %d:\n%s" (List.length vs)
            (Report.render rep))

let seeded_cases =
  [
    seeded_case "unsynchronized access" Diag.Unsynchronized_access seed_unsynchronized;
    seeded_case "write under shared hold" Diag.Write_under_shared_hold seed_shared_write;
    seeded_case "unbound shared data" Diag.Unbound_shared_data seed_unbound;
    seeded_case "misclassified private store" Diag.Misclassified_private_store seed_misclassified;
    seeded_case "stale binding access" Diag.Stale_binding_access seed_stale;
  ]

(* --- static lint --------------------------------------------------------- *)

let lint_findings machine =
  List.filter (fun (v : Diag.violation) -> Diag.is_lint v.Diag.cls)
    (R.check_report machine).Report.violations

let test_lint_overlap () =
  let machine = R.create race_cfg in
  let data = R.alloc machine 16 in
  let _la = R.new_lock machine [ Range.v data 16 ] in
  let _lb = R.new_lock machine [ Range.v (data + 8) 8 ] in
  R.run machine (fun _ -> ());
  match lint_findings machine with
  | [ v ] ->
      Alcotest.(check string)
        "class" "lint-overlapping-bindings" (Diag.class_name v.Diag.cls);
      Alcotest.(check (pair int int)) "overlap hull" (data + 8, data + 16) (v.Diag.lo, v.Diag.hi)
  | vs -> Alcotest.failf "wanted one lint finding, got %d" (List.length vs)

let test_lint_private_and_degenerate () =
  let machine = R.create race_cfg in
  let priv = R.alloc machine ~private_:true 8 in
  let data = R.alloc machine 8 in
  let _lp = R.new_lock machine [ Range.v priv 8 ] in
  let _ld = R.new_lock machine [ Range.v data 0 ] in
  R.run machine (fun _ -> ());
  let classes = List.map (fun (v : Diag.violation) -> Diag.class_name v.Diag.cls) (lint_findings machine) in
  Alcotest.(check (list string))
    "both lint classes fire"
    [ "lint-degenerate-range"; "lint-private-binding" ]
    (List.sort compare classes)

let lint_cases =
  [
    Alcotest.test_case "overlapping bindings" `Quick test_lint_overlap;
    Alcotest.test_case "private and degenerate bindings" `Quick test_lint_private_and_degenerate;
  ]

(* --- unit tests: the shared range list algebra --------------------------- *)
(* The same edge cases the former lib/check Interval module carried;
   Range (now the single implementation, shared with the runtime and the
   static analyzer) must keep them. *)

let rpairs rs = List.map (fun (r : Range.t) -> (r.Range.addr, Range.limit r)) rs

let test_range_normalize () =
  Alcotest.(check (list (pair int int)))
    "sorts, drops empties, merges adjacent" [ (0, 8); (12, 16) ]
    (rpairs (Range.normalize [ Range.v 4 4; Range.v 10 0; Range.v 12 4; Range.v 0 4 ]));
  Alcotest.(check bool) "mem inside" true (Range.mem [ Range.v 0 8 ] 7);
  Alcotest.(check bool) "mem at limit is out" false (Range.mem [ Range.v 0 8 ] 8)

let test_range_subtract_union () =
  let a = [ Range.v 0 16 ] in
  Alcotest.(check (list (pair int int)))
    "subtract splits" [ (0, 4); (8, 16) ]
    (rpairs (Range.subtract_list a ~minus:[ Range.v 4 4 ]));
  Alcotest.(check (list (pair int int)))
    "union merges" [ (0, 16) ]
    (rpairs (Range.union [ Range.v 0 8 ] [ Range.v 8 8 ]));
  Alcotest.(check (list (pair int int)))
    "inter clips" [ (4, 8); (12, 14) ]
    (rpairs (Range.inter [ Range.v 0 8; Range.v 12 2 ] [ Range.v 4 16 ]));
  Alcotest.(check bool) "covers full" true (Range.covers [ Range.v 0 8; Range.v 8 8 ] [ Range.v 2 10 ]);
  Alcotest.(check bool) "covers with a hole" false
    (Range.covers [ Range.v 0 4; Range.v 8 8 ] [ Range.v 2 10 ]);
  let points = ref [] in
  Range.iter_points [ Range.v 2 3 ] ~f:(fun p -> points := p :: !points);
  Alcotest.(check (list int)) "iter_points visits each point" [ 2; 3; 4 ] (List.rev !points)

(* --- unit tests: binding index ------------------------------------------- *)

let test_binding_index_rebind () =
  let ix = Binding_index.create ~nprocs:2 in
  Binding_index.register ix ~id:0 ~kind:Binding_index.Lock ~raw:[ (64, 16) ];
  let w_lo = 64 asr 3 and w_hi = 72 asr 3 in
  Alcotest.(check int) "both words covered" 1 (List.length (Binding_index.syncs_at ix w_hi));
  Binding_index.rebind ix ~id:0 ~raw:[ (64, 8) ];
  Alcotest.(check (list (pair int int)))
    "current ranges shrink" [ (64, 8) ]
    (Binding_index.current_ranges ix ~id:0);
  Alcotest.(check int) "suffix no longer covered" 0 (List.length (Binding_index.syncs_at ix w_hi));
  Alcotest.(check int) "suffix is retired" 1 (List.length (Binding_index.retired_at ix w_hi));
  Alcotest.(check int) "prefix not retired" 0 (List.length (Binding_index.retired_at ix w_lo));
  Alcotest.(check bool) "suffix was ever bound" true (Binding_index.ever_bound ix w_hi);
  (* re-binding the suffix back un-retires it *)
  Binding_index.rebind ix ~id:0 ~raw:[ (64, 16) ];
  Alcotest.(check int) "re-bound word no longer retired" 0
    (List.length (Binding_index.retired_at ix w_hi))

let test_binding_index_degenerate () =
  let ix = Binding_index.create ~nprocs:2 in
  Binding_index.register ix ~id:3 ~kind:Binding_index.Lock ~raw:[ (128, 0); (160, 8) ];
  Alcotest.(check (list (pair int (pair int int))))
    "degenerate entries recorded"
    [ (3, (128, 0)) ]
    (List.map (fun (id, a, l) -> (id, (a, l))) (Binding_index.degenerate ix));
  Alcotest.(check (list (pair int int)))
    "empty ranges dropped from coverage" [ (160, 8) ]
    (Binding_index.current_ranges ix ~id:3)

(* --- unit tests: deduplication ------------------------------------------- *)

let test_dedup () =
  let tbl = Diag.create_table () in
  let ctx () = [ "ctx" ] in
  Diag.note tbl ~cls:Diag.Unsynchronized_access ~proc:1 ~sync:0 ~lo:0 ~hi:8 ~time:10 ~op:"write_int"
    ~detail:"first" ~context:ctx;
  Diag.note tbl ~cls:Diag.Unsynchronized_access ~proc:1 ~sync:0 ~lo:64 ~hi:72 ~time:20 ~op:"read_int"
    ~detail:"second occurrence, same key" ~context:ctx;
  Diag.note tbl ~cls:Diag.Unsynchronized_access ~proc:0 ~sync:0 ~lo:0 ~hi:8 ~time:15 ~op:"write_int"
    ~detail:"different processor, own record" ~context:ctx;
  match Diag.violations tbl with
  | [ a; b ] ->
      Alcotest.(check int) "first record is the earliest" 10 a.Diag.first_time;
      Alcotest.(check int) "two occurrences folded" 2 a.Diag.count;
      Alcotest.(check (pair int int)) "address hull widened" (0, 72) (a.Diag.lo, a.Diag.hi);
      Alcotest.(check string) "first op kept" "write_int" a.Diag.first_op;
      Alcotest.(check string) "first detail kept" "first" a.Diag.detail;
      Alcotest.(check int) "other key separate" 0 b.Diag.proc;
      Alcotest.(check int) "ordered by first occurrence" 15 b.Diag.first_time
  | vs -> Alcotest.failf "wanted two deduplicated records, got %d" (List.length vs)

let unit_cases =
  [
    Alcotest.test_case "range normalize/mem" `Quick test_range_normalize;
    Alcotest.test_case "range subtract/union/points" `Quick test_range_subtract_union;
    Alcotest.test_case "binding index rebind/retire" `Quick test_binding_index_rebind;
    Alcotest.test_case "binding index degenerate ranges" `Quick test_binding_index_degenerate;
    Alcotest.test_case "violation dedup" `Quick test_dedup;
  ]

let () =
  Alcotest.run "check"
    [
      ("apps-clean", app_cases);
      ("examples-clean", example_cases);
      ("seeded-races", seeded_cases);
      ("lint", lint_cases);
      ("unit", unit_cases);
    ]
