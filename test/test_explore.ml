(* Tests for the schedule explorer: the qcheck convergence property over
   random EC programs x random schedules x backends, record/replay
   reproducibility, counterexample shrinking and the counterexample file
   round trip. *)

module Config = Midway.Config
module Engine = Midway_sched.Engine
module Explore = Midway_explore.Explore
module Workload = Midway_explore.Workload
module Ecgen = Midway_explore.Ecgen

let qtest = QCheck_alcotest.to_alcotest

let seeded_config ?(nprocs = 3) ?(ecsan = true) backend sseed =
  let cfg = Config.make backend ~nprocs in
  { cfg with Config.ecsan; sched_policy = Engine.Seeded sseed }

(* The headline property: a random lock/barrier-guarded EC program
   converges to its sequential oracle on every backend under (at least)
   20 random schedules, judged by the oracle, the protocol invariants
   and ECSan all at once; and for each (workload seed, schedule seed)
   the RT and VM machines end with identical shared memory. *)
let random_programs_converge =
  QCheck.Test.make ~name:"random EC programs converge under 20 schedules on every backend"
    ~count:4
    QCheck.(int_bound 100_000)
    (fun wseed ->
      let w = Ecgen.workload ~seed:wseed () in
      List.for_all
        (fun i ->
          let sseed = (wseed * 31) + i in
          let digest_of backend =
            let j = Explore.execute w (seeded_config backend sseed) in
            if j.Explore.j_failed then
              QCheck.Test.fail_reportf "wseed=%d sseed=%d backend=%s:\n%s" wseed sseed
                (Config.backend_name backend)
                j.Explore.j_reason;
            j.Explore.j_digest
          in
          let rt = digest_of Config.Rt in
          let vm = digest_of Config.Vm in
          ignore (digest_of Config.Twin);
          ignore (digest_of Config.Blast);
          if rt <> vm then
            QCheck.Test.fail_reportf "wseed=%d sseed=%d: rt memory %S <> vm memory %S" wseed
              sseed rt vm;
          true)
        (List.init 20 (fun i -> i + 1)))

(* Replay determinism: re-running a seeded schedule from its recorded
   choice list reproduces the same final memory, and the replay
   re-records exactly the choices it applied. *)
let test_replay_reproduces_clean_run () =
  let w = Workload.counter ~iters:5 in
  let j1 = Explore.execute w (seeded_config Config.Rt 9) in
  Alcotest.(check bool) "seeded run is clean" false j1.Explore.j_failed;
  let choices = Option.get j1.Explore.j_choices in
  Alcotest.(check bool) "ties were recorded" true (choices <> []);
  let cfg = Config.make Config.Rt ~nprocs:3 in
  let cfg = { cfg with Config.ecsan = true; sched_policy = Engine.Replay choices } in
  let j2 = Explore.execute w cfg in
  Alcotest.(check bool) "replay is clean" false j2.Explore.j_failed;
  Alcotest.(check string) "replay ends with identical memory" j1.Explore.j_digest
    j2.Explore.j_digest;
  Alcotest.(check (list int)) "replay re-records its schedule" choices
    (Option.get j2.Explore.j_choices)

let test_replay_reproduces_failure () =
  (* find a schedule that breaks the order-sensitive workload, then
     replay its recording and demand the same wrong memory *)
  let w = Workload.order_sensitive in
  let rec hunt s =
    if s > 40 then Alcotest.fail "no schedule broke order-sensitive in 40 seeds"
    else
      let j = Explore.execute w (seeded_config ~nprocs:4 Config.Rt s) in
      if j.Explore.j_failed then (s, j) else hunt (s + 1)
  in
  let _, j1 = hunt 1 in
  let choices = Option.get j1.Explore.j_choices in
  let cfg = Config.make Config.Rt ~nprocs:4 in
  let cfg = { cfg with Config.ecsan = true; sched_policy = Engine.Replay choices } in
  let j2 = Explore.execute w cfg in
  Alcotest.(check bool) "failure reproduced" true j2.Explore.j_failed;
  Alcotest.(check string) "same wrong memory" j1.Explore.j_digest j2.Explore.j_digest;
  Alcotest.(check string) "same diagnosis" j1.Explore.j_reason j2.Explore.j_reason

(* The shrinker, against pure predicates. *)
let test_shrink_prefix_and_zeroing () =
  (* failure depends only on the first choice being 1 *)
  let fails = function x :: _ -> x = 1 | [] -> false in
  let shrunk, runs = Explore.shrink ~budget:50 ~fails [ 1; 4; 7; 2 ] in
  Alcotest.(check (option (list int))) "minimal prefix" (Some [ 1 ]) shrunk;
  Alcotest.(check bool) "spent a reasonable budget" true (runs <= 10)

let test_shrink_everywhere_failure_to_empty () =
  let shrunk, _ = Explore.shrink ~budget:50 ~fails:(fun _ -> true) [ 3; 1; 2 ] in
  Alcotest.(check (option (list int))) "fails-everywhere shrinks to []" (Some []) shrunk

let test_shrink_unreproducible_is_none () =
  let shrunk, runs = Explore.shrink ~budget:50 ~fails:(fun _ -> false) [ 1; 2 ] in
  Alcotest.(check (option (list int))) "no reproduction -> None" None shrunk;
  Alcotest.(check int) "only the confirmation run" 1 runs

let test_shrink_zeroes_survivors () =
  (* fails iff the list sums to >= 5: zeroing drops the prefix's noise *)
  let fails l = List.fold_left ( + ) 0 l >= 5 in
  let shrunk, _ = Explore.shrink ~budget:100 ~fails [ 2; 0; 3; 9 ] in
  match shrunk with
  | None -> Alcotest.fail "must reproduce"
  | Some l ->
      Alcotest.(check bool) "still failing" true (fails l);
      Alcotest.(check bool) "no longer than the original" true (List.length l <= 4)

(* End to end: the fuzzer grid finds the seeded bugs and shrinks them. *)
let test_fuzzer_finds_and_shrinks_order_bug () =
  let spec =
    {
      Explore.default_spec with
      Explore.workloads = [ Workload.order_sensitive ];
      backends = [ Config.Rt ];
      schedules = 20;
    }
  in
  let report = Explore.run_spec spec in
  match report.Explore.failures with
  | [ c ] -> (
      Alcotest.(check string) "right workload" "order-sensitive" c.Explore.c_workload;
      match c.Explore.c_shrunk with
      | None -> Alcotest.fail "failure must shrink"
      | Some l ->
          (* the bug needs exactly one tie to go the other way *)
          Alcotest.(check bool) "shrunk to very few choices" true (List.length l <= 2);
          let rp =
            {
              Explore.rp_workload = "order-sensitive";
              rp_backend = Config.Rt;
              rp_nprocs = spec.Explore.nprocs;
              rp_ecsan = true;
              rp_adaptive = false;
              rp_fault_drop = None;
              rp_fault_seed = None;
              rp_crash = None;
              rp_schedule_seed = Some c.Explore.c_schedule_seed;
              rp_choices = Some l;
            }
          in
          (match Explore.replay rp with
          | Ok r -> Alcotest.(check bool) "shrunk counterexample reproduces" true r.Explore.rr_failed
          | Error e -> Alcotest.fail e))
  | l -> Alcotest.fail (Printf.sprintf "expected exactly one failure, got %d" (List.length l))

let test_fuzzer_shrinks_racy_to_empty () =
  let spec =
    {
      Explore.default_spec with
      Explore.workloads = [ Workload.racy ];
      backends = [ Config.Vm ];
      schedules = 4;
    }
  in
  let report = Explore.run_spec spec in
  match report.Explore.failures with
  | [ c ] ->
      Alcotest.(check (option (list int))) "fails everywhere -> empty counterexample"
        (Some []) c.Explore.c_shrunk;
      Alcotest.(check bool) "ECSan contributed to the diagnosis" true
        (let s = c.Explore.c_reason in
         let n = String.length s in
         let rec go i = i + 6 <= n && (String.sub s i 6 = "ecsan:" || go (i + 1)) in
         go 0)
  | l -> Alcotest.fail (Printf.sprintf "expected exactly one failure, got %d" (List.length l))

(* Satellite: the determinism contract over the full fault space — a
   (workload seed, schedule seed, fault seed, crash schedule) tuple
   yields a bit-identical run digest across two executions.  The crashy
   digest folds in the killed set and the failover count, so the
   recovery protocol itself is under the identity check. *)
let runs_are_deterministic_under_crash_faults =
  QCheck.Test.make
    ~name:"(workload, schedule, fault, crash) tuples replay bit-identically" ~count:6
    QCheck.(pair (int_bound 1000) (int_bound 1000))
    (fun (sseed, cseed) ->
      let plan =
        Midway_simnet.Crash.seeded ~seed:cseed ~nprocs:4 ~events:2 ~horizon_ns:600_000
      in
      let w = Workload.crashy ~iters:4 in
      let run () =
        let cfg = Config.make Config.Rt ~nprocs:4 in
        let cfg = { cfg with Config.ecsan = true; sched_policy = Engine.Seeded sseed } in
        let cfg = Config.with_faults ~drop:0.01 ~seed:(sseed lxor 0x5A5A) cfg in
        let cfg = Config.with_crash plan cfg in
        Explore.execute w cfg
      in
      let a = run () and b = run () in
      if a.Explore.j_digest = "" then
        QCheck.Test.fail_reportf "sseed=%d cseed=%d: no digest (%s)" sseed cseed
          a.Explore.j_reason;
      if a.Explore.j_digest <> b.Explore.j_digest || a.Explore.j_reason <> b.Explore.j_reason
      then
        QCheck.Test.fail_reportf "sseed=%d cseed=%d: %S / %S vs %S / %S" sseed cseed
          a.Explore.j_digest a.Explore.j_reason b.Explore.j_digest b.Explore.j_reason;
      true)

(* The crash-event shrinker, against a pure predicate. *)
let test_shrink_crash_deletes_to_minimum () =
  let module Crash = Midway_simnet.Crash in
  let ev at_ns proc action = { Crash.at_ns; proc; action } in
  let plan =
    Crash.scripted
      [ ev 10 0 Crash.Stop; ev 20 0 Crash.Recover; ev 30 1 Crash.Stop ]
  in
  (* the failure only needs p1's stop; p0's stop/recover pair is noise.
     Deleting p0's Stop alone is illegal (dangling Recover), so the
     fixpoint pass must remove the Recover first, then the Stop. *)
  let fails p =
    List.exists (fun e -> e.Crash.proc = 1 && e.Crash.action = Crash.Stop) (Crash.events p)
  in
  let shrunk, runs = Explore.shrink_crash ~budget:30 ~fails plan in
  (match Crash.events shrunk with
  | [ e ] ->
      Alcotest.(check int) "the culprit survives" 1 e.Crash.proc;
      Alcotest.(check bool) "and is a stop" true (e.Crash.action = Crash.Stop)
  | l -> Alcotest.fail (Printf.sprintf "expected 1 event, got %d" (List.length l)));
  Alcotest.(check bool) "bounded budget" true (runs <= 30)

(* End to end over the crash dimension: the fuzzer composes crash
   schedules with thread schedules, catches the broken-failover prey,
   shrinks the crash-event list, and the dumped counterexample replays
   through the file format. *)
let test_fuzzer_finds_broken_failover () =
  let spec =
    {
      Explore.default_spec with
      Explore.workloads = [ Workload.crashy_broken ~iters:6 ];
      backends = [ Config.Rt; Config.Vm ];
      schedules = 12;
      crash_events = 2;
      crash_horizon_ns = 800_000;
    }
  in
  let report = Explore.run_spec spec in
  match report.Explore.failures with
  | [] -> Alcotest.fail "the broken failover escaped the grid"
  | c :: _ -> (
      Alcotest.(check string) "right workload" "crashy-broken" c.Explore.c_workload;
      (match c.Explore.c_crash with
      | None -> Alcotest.fail "counterexample must carry its crash plan"
      | Some s -> Alcotest.(check bool) "the plan shrank to stops only" true
            (String.length s > 0 && not (String.contains s ' ')));
      match Explore.parse_counterexample (Explore.render_counterexample c) with
      | Error e -> Alcotest.fail e
      | Ok rp -> (
          Alcotest.(check bool) "crash plan survives the file round trip" true
            (rp.Explore.rp_crash = c.Explore.c_crash);
          match Explore.replay rp with
          | Error e -> Alcotest.fail e
          | Ok r ->
              Alcotest.(check bool) "the shrunk crash counterexample reproduces" true
                r.Explore.rr_failed))

(* The clean crash workload must survive the same grid: failover under
   seeded crash schedules is not allowed to corrupt the bound data. *)
let test_fuzzer_crash_clean_sweep () =
  let spec =
    {
      Explore.default_spec with
      Explore.workloads = [ Workload.crashy ~iters:6 ];
      backends = [ Config.Rt; Config.Vm; Config.Twin ];
      schedules = 8;
      crash_events = 2;
      crash_horizon_ns = 800_000;
    }
  in
  let report = Explore.run_spec spec in
  (match report.Explore.failures with
  | [] -> ()
  | c :: _ ->
      Alcotest.fail
        (Printf.sprintf "quorum failover corrupted a clean run: %s" c.Explore.c_reason));
  Alcotest.(check int) "three grid points swept" 3 report.Explore.grid_points

(* Counterexample file round trip. *)
let test_counterexample_roundtrip () =
  let c =
    {
      Explore.c_workload = "mix";
      c_backend = Config.Vm;
      c_nprocs = 5;
      c_ecsan = false;
      c_adaptive = true;
      c_fault_drop = Some 0.02;
      c_fault_seed = Some 1234;
      c_crash = Some "stop@2000:p1,recover@8000:p1";
      c_schedule_seed = 17;
      c_reason = "oracle: something\nbroke";
      c_choices = Some [ 0; 2; 1 ];
      c_shrunk = Some [ 2 ];
      c_shrink_runs = 5;
      c_trace = [ "lock 0: local acquire by p1" ];
    }
  in
  match Explore.parse_counterexample (Explore.render_counterexample c) with
  | Error e -> Alcotest.fail e
  | Ok rp ->
      Alcotest.(check string) "workload" "mix" rp.Explore.rp_workload;
      Alcotest.(check int) "nprocs" 5 rp.Explore.rp_nprocs;
      Alcotest.(check bool) "ecsan" false rp.Explore.rp_ecsan;
      Alcotest.(check bool) "the adaptive flag travels" true rp.Explore.rp_adaptive;
      Alcotest.(check (option (list int))) "the shrunk choices travel" (Some [ 2 ])
        rp.Explore.rp_choices;
      Alcotest.(check (option int)) "schedule seed" (Some 17) rp.Explore.rp_schedule_seed;
      Alcotest.(check (option int)) "fault seed" (Some 1234) rp.Explore.rp_fault_seed;
      Alcotest.(check (option string)) "the crash plan travels"
        (Some "stop@2000:p1,recover@8000:p1") rp.Explore.rp_crash

let test_parse_rejects_junk () =
  (match Explore.parse_counterexample "workload=counter\nnot a kv line" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "malformed line must be rejected");
  match Explore.parse_counterexample "# only comments\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "a counterexample without a workload must be rejected"

let test_workload_registry () =
  (match Explore.workload_of_name "ecgen:42" with
  | Ok w -> Alcotest.(check string) "ecgen name" "ecgen:42" w.Workload.name
  | Error e -> Alcotest.fail e);
  (match Explore.workload_of_name "quicksort" with
  | Ok w -> Alcotest.(check bool) "quicksort runs under blast" true (w.Workload.supports Config.Blast)
  | Error e -> Alcotest.fail e);
  match Explore.workload_of_name "no-such-workload" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown names must be rejected"

(* Determinism of the generator itself. *)
let test_ecgen_deterministic () =
  let a = Ecgen.generate ~seed:7 ~nprocs:3 () in
  let b = Ecgen.generate ~seed:7 ~nprocs:3 () in
  Alcotest.(check bool) "equal seeds, equal programs" true (a = b);
  let c = Ecgen.generate ~seed:8 ~nprocs:3 () in
  Alcotest.(check bool) "different seeds differ" true (a <> c);
  let buggy = Ecgen.generate ~buggy:true ~seed:7 ~nprocs:3 () in
  let raw =
    Array.fold_left
      (fun acc procs ->
        Array.fold_left
          (fun acc l ->
            acc + List.length (List.filter (function Ecgen.Raw_add _ -> true | _ -> false) l))
          acc procs)
      0 buggy.Ecgen.ops
  in
  Alcotest.(check int) "buggy variant strips exactly one lock" 1 raw;
  Alcotest.(check bool) "oracle unchanged by the strip" true
    (Ecgen.expected buggy = Ecgen.expected a)

let () =
  Alcotest.run "explore"
    [
      ( "property",
        [
          qtest random_programs_converge;
          qtest runs_are_deterministic_under_crash_faults;
          Alcotest.test_case "ecgen deterministic" `Quick test_ecgen_deterministic;
        ] );
      ( "record/replay",
        [
          Alcotest.test_case "replay reproduces a clean run" `Quick
            test_replay_reproduces_clean_run;
          Alcotest.test_case "replay reproduces a failure" `Quick test_replay_reproduces_failure;
        ] );
      ( "shrinking",
        [
          Alcotest.test_case "prefix and zeroing" `Quick test_shrink_prefix_and_zeroing;
          Alcotest.test_case "fails-everywhere to empty" `Quick
            test_shrink_everywhere_failure_to_empty;
          Alcotest.test_case "unreproducible is None" `Quick test_shrink_unreproducible_is_none;
          Alcotest.test_case "zeroes survivors" `Quick test_shrink_zeroes_survivors;
          Alcotest.test_case "crash events delete to the culprit" `Quick
            test_shrink_crash_deletes_to_minimum;
        ] );
      ( "fuzzer",
        [
          Alcotest.test_case "finds and shrinks the order bug" `Quick
            test_fuzzer_finds_and_shrinks_order_bug;
          Alcotest.test_case "shrinks racy to empty" `Quick test_fuzzer_shrinks_racy_to_empty;
          Alcotest.test_case "finds the broken failover via the crash dimension" `Quick
            test_fuzzer_finds_broken_failover;
          Alcotest.test_case "clean failover survives the crash grid" `Quick
            test_fuzzer_crash_clean_sweep;
        ] );
      ( "counterexample files",
        [
          Alcotest.test_case "round trip" `Quick test_counterexample_roundtrip;
          Alcotest.test_case "rejects junk" `Quick test_parse_rejects_junk;
          Alcotest.test_case "workload registry" `Quick test_workload_registry;
        ] );
    ]
