(* Unit and property tests for Midway_util: PRNG, min-heap, text tables,
   plots and unit formatting. *)

module Prng = Midway_util.Prng
module Minheap = Midway_util.Minheap
module Texttab = Midway_util.Texttab
module Units = Midway_util.Units

let qtest = QCheck_alcotest.to_alcotest

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

(* --- Prng ------------------------------------------------------------ *)

let test_prng_deterministic () =
  let a = Prng.create ~seed:42 and b = Prng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create ~seed:1 and b = Prng.create ~seed:2 in
  Alcotest.(check bool) "different seeds differ" false (Prng.bits64 a = Prng.bits64 b)

let test_prng_copy_independent () =
  let a = Prng.create ~seed:7 in
  let b = Prng.copy a in
  Alcotest.(check int64) "copy starts from same state" (Prng.bits64 a) (Prng.bits64 b);
  ignore (Prng.bits64 a);
  let c = Prng.copy b in
  Alcotest.(check int64) "copy of b tracks b" (Prng.bits64 b) (Prng.bits64 c)

let test_prng_split () =
  let a = Prng.create ~seed:9 in
  let b = Prng.split a in
  Alcotest.(check bool) "split stream differs from parent" false
    (Prng.bits64 a = Prng.bits64 b)

let test_prng_int_bounds_invalid () =
  let g = Prng.create ~seed:1 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int g 0))

let prng_int_in_range =
  QCheck.Test.make ~name:"Prng.int stays in [0, bound)" ~count:500
    QCheck.(pair small_int (int_bound 10_000))
    (fun (seed, bound) ->
      let bound = bound + 1 in
      let g = Prng.create ~seed in
      let v = Prng.int g bound in
      v >= 0 && v < bound)

let prng_int_in_inclusive =
  QCheck.Test.make ~name:"Prng.int_in stays in [lo, hi]" ~count:500
    QCheck.(triple small_int (int_range (-500) 500) (int_bound 1000))
    (fun (seed, lo, span) ->
      let hi = lo + span in
      let g = Prng.create ~seed in
      let v = Prng.int_in g lo hi in
      v >= lo && v <= hi)

let prng_float_in_range =
  QCheck.Test.make ~name:"Prng.float stays in [0, bound)" ~count:500 QCheck.small_int
    (fun seed ->
      let g = Prng.create ~seed in
      let v = Prng.float g 3.5 in
      v >= 0.0 && v < 3.5)

let prng_shuffle_permutation =
  QCheck.Test.make ~name:"Prng.shuffle is a permutation" ~count:200
    QCheck.(pair small_int (list small_int))
    (fun (seed, xs) ->
      let a = Array.of_list xs in
      let g = Prng.create ~seed in
      Prng.shuffle g a;
      List.sort compare (Array.to_list a) = List.sort compare xs)

(* --- Minheap ---------------------------------------------------------- *)

let test_heap_basic () =
  let h = Minheap.create () in
  Alcotest.(check bool) "fresh heap empty" true (Minheap.is_empty h);
  Minheap.push h ~key:5 "five";
  Minheap.push h ~key:1 "one";
  Minheap.push h ~key:3 "three";
  Alcotest.(check int) "length" 3 (Minheap.length h);
  Alcotest.(check (option int)) "peek" (Some 1) (Minheap.peek_key h);
  Alcotest.(check (option (pair int string))) "pop min" (Some (1, "one")) (Minheap.pop h);
  Alcotest.(check (option (pair int string))) "pop next" (Some (3, "three")) (Minheap.pop h);
  Alcotest.(check (option (pair int string))) "pop last" (Some (5, "five")) (Minheap.pop h);
  Alcotest.(check (option (pair int string))) "empty pop" None (Minheap.pop h)

let test_heap_fifo_ties () =
  let h = Minheap.create () in
  List.iter (fun v -> Minheap.push h ~key:7 v) [ "a"; "b"; "c"; "d" ];
  let order = List.init 4 (fun _ -> snd (Option.get (Minheap.pop h))) in
  Alcotest.(check (list string)) "insertion order on equal keys" [ "a"; "b"; "c"; "d" ] order

let test_heap_clear () =
  let h = Minheap.create () in
  Minheap.push h ~key:1 1;
  Minheap.clear h;
  Alcotest.(check bool) "cleared" true (Minheap.is_empty h)

let heap_sorts =
  QCheck.Test.make ~name:"Minheap pops keys in nondecreasing order" ~count:300
    QCheck.(list (int_bound 1000))
    (fun keys ->
      let h = Minheap.create () in
      List.iteri (fun i k -> Minheap.push h ~key:k i) keys;
      let rec drain acc =
        match Minheap.pop h with Some (k, _) -> drain (k :: acc) | None -> List.rev acc
      in
      drain [] = List.sort compare keys)

let heap_interleaved_model =
  QCheck.Test.make ~name:"Minheap matches a sorted-list model under interleaving" ~count:200
    QCheck.(list (option (int_bound 100)))
    (fun ops ->
      let h = Minheap.create () in
      let model = ref [] in
      let seq = ref 0 in
      let ok = ref true in
      List.iter
        (fun op ->
          match op with
          | Some k ->
              Minheap.push h ~key:k !seq;
              model := (k, !seq) :: !model;
              incr seq
          | None -> (
              let expected =
                match List.sort compare !model with [] -> None | x :: _ -> Some x
              in
              match (Minheap.pop h, expected) with
              | None, None -> ()
              | Some (k, v), Some ((mk, mv) as m) ->
                  if k <> mk || v <> mv then ok := false;
                  model := List.filter (fun e -> e <> m) !model
              | _ -> ok := false))
        ops;
      !ok)

(* --- Texttab ---------------------------------------------------------- *)

let test_fmt_int () =
  Alcotest.(check string) "thousands" "1,284,004" (Texttab.fmt_int 1_284_004);
  Alcotest.(check string) "small" "42" (Texttab.fmt_int 42);
  Alcotest.(check string) "negative" "-1,000" (Texttab.fmt_int (-1_000));
  Alcotest.(check string) "zero" "0" (Texttab.fmt_int 0)

let test_fmt_float () =
  Alcotest.(check string) "one decimal" "3,499.2" (Texttab.fmt_float ~decimals:1 3499.2);
  Alcotest.(check string) "negative" "-29.1" (Texttab.fmt_float ~decimals:1 (-29.1))

let test_table_render () =
  let t = Texttab.create ~columns:[ ("name", Texttab.Left); ("value", Texttab.Right) ] in
  Texttab.row t [ "water"; "43,180" ];
  Texttab.separator t;
  Texttab.row t [ "sor" ];
  let s = Texttab.render t in
  Alcotest.(check bool) "mentions data" true (contains s "water");
  let lines =
    String.split_on_char '\n' s |> List.filter (fun l -> l <> "") |> List.map String.length
  in
  (match lines with
  | [] -> Alcotest.fail "no output"
  | w :: rest -> List.iter (fun w' -> Alcotest.(check int) "aligned lines" w w') rest);
  Alcotest.check_raises "too many cells" (Invalid_argument "Texttab.row: too many cells")
    (fun () -> Texttab.row t [ "a"; "b"; "c" ])

(* --- Units ------------------------------------------------------------ *)

let test_units () =
  Alcotest.(check string) "ns" "360 ns" (Units.pp_time 360);
  Alcotest.(check string) "ms" "1.20 ms" (Units.pp_time 1_200_000);
  Alcotest.(check string) "s" "104.20 s" (Units.pp_time 104_200_000_000);
  Alcotest.(check string) "bytes" "784.0 KB" (Units.pp_bytes (784 * 1024));
  Alcotest.(check (float 1e-9)) "kb" 2.0 (Units.kb_of_bytes 2048);
  Alcotest.(check (float 1e-9)) "us" 1.2 (Units.us_of_ns 1200)

(* --- Asciiplot --------------------------------------------------------- *)

let test_plot_smoke () =
  let p =
    Midway_util.Asciiplot.create ~width:30 ~height:8 ~title:"t" ~x_label:"x" ~y_label:"y" ()
  in
  Midway_util.Asciiplot.series p ~name:"a" ~marker:'*' [ (0.0, 0.0); (1.0, 2.0); (2.0, 1.0) ];
  Midway_util.Asciiplot.diagonal p;
  let s = Midway_util.Asciiplot.render p in
  Alcotest.(check bool) "has legend" true (contains s "[*] a");
  Alcotest.(check bool) "has diagonal note" true (contains s "break-even")

let test_plot_empty () =
  let p = Midway_util.Asciiplot.create ~title:"empty" ~x_label:"x" ~y_label:"y" () in
  Alcotest.(check bool) "notes absence of data" true
    (contains (Midway_util.Asciiplot.render p) "no data")

let test_plot_all_series_empty () =
  (* series attached but every one pointless: used to compute min/max over
     zero points and render a NaN-scaled grid; must degrade to "(no data)" *)
  let p = Midway_util.Asciiplot.create ~title:"hollow" ~x_label:"x" ~y_label:"y" () in
  Midway_util.Asciiplot.series p ~name:"a" ~marker:'*' [];
  Midway_util.Asciiplot.series p ~name:"b" ~marker:'+' [];
  let s = Midway_util.Asciiplot.render p in
  Alcotest.(check bool) "notes absence of data" true (contains s "no data");
  Alcotest.(check bool) "no NaN in output" false (contains s "nan")

let test_bars_smoke () =
  let s =
    Midway_util.Asciiplot.bars ~title:"times" ~unit_label:"s"
      ~groups:[ ("water", [ ("rt", 1.0); ("vm", 2.0) ]) ]
  in
  Alcotest.(check bool) "mentions group" true (contains s "water");
  Alcotest.(check bool) "mentions bar" true (contains s "rt")

let () =
  Alcotest.run "util"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
          Alcotest.test_case "copy" `Quick test_prng_copy_independent;
          Alcotest.test_case "split" `Quick test_prng_split;
          Alcotest.test_case "invalid bound" `Quick test_prng_int_bounds_invalid;
          qtest prng_int_in_range;
          qtest prng_int_in_inclusive;
          qtest prng_float_in_range;
          qtest prng_shuffle_permutation;
        ] );
      ( "minheap",
        [
          Alcotest.test_case "basic" `Quick test_heap_basic;
          Alcotest.test_case "fifo ties" `Quick test_heap_fifo_ties;
          Alcotest.test_case "clear" `Quick test_heap_clear;
          qtest heap_sorts;
          qtest heap_interleaved_model;
        ] );
      ( "texttab",
        [
          Alcotest.test_case "fmt_int" `Quick test_fmt_int;
          Alcotest.test_case "fmt_float" `Quick test_fmt_float;
          Alcotest.test_case "render" `Quick test_table_render;
        ] );
      ("units", [ Alcotest.test_case "formatting" `Quick test_units ]);
      ( "asciiplot",
        [
          Alcotest.test_case "plot" `Quick test_plot_smoke;
          Alcotest.test_case "empty plot" `Quick test_plot_empty;
          Alcotest.test_case "all series empty" `Quick test_plot_all_series_empty;
          Alcotest.test_case "bars" `Quick test_bars_smoke;
        ] );
    ]
