(* Per-region hybrid write detection, plus the PR's hot-path
   correctness sweep:

   - the coalesced dirtybit scan checked against a per-line reference
     model across random writes, incoming stamps, epoch-style resets and
     both scanning organizations;
   - update-queue bookkeeping across scans and region resets;
   - the space accessor's last-hit cache under interleaved processors,
     regions and boundary probes;
   - the VM zero-copy collect path failing loudly on a page that spans
     two regions (the migrated-bucket shape);
   - mixed-backend machines (striped rt/vm regions) converging to the
     same memory image as pure-backend runs, with per-region collect
     accounting summing exactly to the processor counters;
   - the adaptive controller's window/hysteresis/cooldown/min-gain
     arithmetic, and manual region re-election safety. *)

module R = Midway.Runtime
module Range = Midway.Range
module Config = Midway.Config
module Policy = Midway.Policy
module Timestamp = Midway.Timestamp
module Dirtybits = Midway.Dirtybits
module Vm_state = Midway.Vm_state
module Space = Midway_memory.Space
module Region = Midway_memory.Region
module Page_table = Midway_vmem.Page_table
module Counters = Midway_stats.Counters
module Cost_model = Midway_stats.Cost_model
module Hybrid = Midway_apps.Hybrid
module Outcome = Midway_apps.Outcome
module Ecgen = Midway_explore.Ecgen
module Workload = Midway_explore.Workload

let qtest = QCheck_alcotest.to_alcotest

(* --- coalesced scan vs a per-line reference model ----------------------- *)

(* 64 lines of 8 bytes inside one region; the model tracks each line's
   timestamp and locally-dirty flag and replays the documented scan
   semantics line by line.  The coalesced scan must agree on the emitted
   (line, ts, fresh) set, on the post-scan timestamps, and (in Plain
   mode, which skips nothing) on the clean/dirty read counts. *)

let nlines = 64

type model = { mts : int array; mdirty : bool array }

let model_create () =
  { mts = Array.make nlines Timestamp.initial; mdirty = Array.make nlines false }

let model_write m ~line_lo ~line_hi =
  for i = line_lo to line_hi do
    m.mdirty.(i) <- true
  done

let model_set_ts m ~line ~ts =
  m.mts.(line) <- ts;
  m.mdirty.(line) <- false

let model_reset m =
  Array.fill m.mts 0 nlines Timestamp.initial;
  Array.fill m.mdirty 0 nlines false

let model_scan m ~lo ~n ~stamp ~select =
  let clean = ref 0 and dirty = ref 0 and emitted = ref [] in
  for i = lo to lo + n - 1 do
    let fresh = m.mdirty.(i) in
    if fresh then begin
      m.mdirty.(i) <- false;
      m.mts.(i) <- stamp;
      incr dirty
    end
    else incr clean;
    let selected =
      match select with
      | Dirtybits.Transfer cursor -> m.mts.(i) > cursor
      | Dirtybits.Fresh_only -> fresh
    in
    if selected then emitted := (i, m.mts.(i), fresh) :: !emitted
  done;
  (!clean, !dirty, List.rev !emitted)

(* Expand each coalesced run back into lines, as test_core does. *)
let lines_of_scan db ~region ~base ~lo ~n ~stamp ~select =
  let emitted = ref [] in
  let counts =
    Dirtybits.scan db
      ~region_of:(fun _ -> region)
      ~ranges:[ Range.v (base + (lo * 8)) (n * 8) ]
      ~stamp ~select
      ~emit:(fun ~addr ~len ~ts ~fresh ~lines ->
        let line_len = len / lines in
        for i = 0 to lines - 1 do
          emitted := ((addr + (i * line_len) - base) / 8, ts, fresh) :: !emitted
        done)
  in
  (counts, List.rev !emitted)

(* Ops are decoded from integer triples so qcheck can shrink them. *)
let scan_matches_model mode =
  let name =
    Printf.sprintf "coalesced scan == per-line model (%s)" (Config.rt_mode_name mode)
  in
  QCheck.Test.make ~name ~count:200
    QCheck.(
      list_of_size (Gen.int_range 1 40)
        (triple (int_bound 20) (int_bound (nlines - 1)) (int_bound 1000)))
    (fun ops ->
      let region =
        Region.create ~index:1 ~kind:Region.Shared ~line_size:8 ~region_size:4096 ~nprocs:1
      in
      let base = Region.base region in
      let db = Dirtybits.create ~mode ~group:16 in
      let m = model_create () in
      let stamp = ref (Timestamp.initial + 100) in
      let ok = ref true in
      let check_line_ts () =
        for i = 0 to nlines - 1 do
          let expect =
            if m.mdirty.(i) then Timestamp.locally_dirty else m.mts.(i)
          in
          if Dirtybits.line_ts db ~region ~addr:(base + (i * 8)) <> expect then ok := false
        done
      in
      List.iter
        (fun (kind, a, b) ->
          match kind mod 4 with
          | 0 ->
              (* a store of 1..24 bytes at an arbitrary byte address *)
              let addr = base + (a * 8) + (b mod 8) in
              let len = 1 + (b mod 24) in
              let len = min len ((nlines * 8) - (addr - base)) in
              Dirtybits.note_write db ~region ~addr ~len;
              model_write m ~line_lo:((addr - base) / 8)
                ~line_hi:((addr - base + len - 1) / 8)
          | 1 ->
              (* an incoming update's stamp *)
              let ts = Timestamp.initial + 1 + (b mod 500) in
              Dirtybits.set_ts db ~region ~addr:(base + (a * 8)) ~ts;
              model_set_ts m ~line:a ~ts
          | 2 ->
              (* a collection over a sub-range *)
              let lo = a in
              let n = 1 + (b mod (nlines - lo)) in
              let select =
                if b mod 5 = 0 then Dirtybits.Fresh_only
                else
                  Dirtybits.Transfer
                    (if b mod 3 = 0 then Timestamp.never_seen
                     else Timestamp.initial + (b mod 400))
              in
              stamp := !stamp + 3;
              let counts, got =
                lines_of_scan db ~region ~base ~lo ~n ~stamp:!stamp ~select
              in
              let clean, dirty, want = model_scan m ~lo ~n ~stamp:!stamp ~select in
              if got <> want then ok := false;
              (* Plain visits every line; Two_level may legally skip
                 clean groups below the cursor, so only Plain's read
                 counts are pinned. *)
              if mode = Config.Plain then
                if
                  counts.Dirtybits.clean_reads <> clean
                  || counts.Dirtybits.dirty_reads <> dirty
                then ok := false
          | _ ->
              (* the backend-switch path: forget everything *)
              Dirtybits.reset_region db region;
              model_reset m)
        ops;
      check_line_ts ();
      !ok)

let test_update_queue_bookkeeping () =
  let region =
    Region.create ~index:1 ~kind:Region.Shared ~line_size:8 ~region_size:4096 ~nprocs:1
  in
  let base = Region.base region in
  let db = Dirtybits.create ~mode:Config.Update_queue ~group:16 in
  Alcotest.(check int) "empty queue" 0 (Dirtybits.queue_length db);
  Dirtybits.note_write db ~region ~addr:base ~len:8;
  Dirtybits.note_write db ~region ~addr:(base + 8) ~len:8;
  Dirtybits.note_write db ~region ~addr:(base + 64) ~len:16;
  let queued = Dirtybits.queue_length db in
  Alcotest.(check bool) "writes queue" true (queued > 0);
  let counts, emitted =
    lines_of_scan db ~region ~base ~lo:0 ~n:nlines ~stamp:(Timestamp.initial + 10)
      ~select:(Dirtybits.Transfer Timestamp.never_seen)
  in
  Alcotest.(check int) "scan consumes the queue" queued counts.Dirtybits.queue_entries;
  Alcotest.(check int) "queue drained" 0 (Dirtybits.queue_length db);
  (* Only queued lines are visited: exactly lines 0, 1, 8 and 9. *)
  Alcotest.(check (list int)) "only written lines emitted" [ 0; 1; 8; 9 ]
    (List.sort compare (List.map (fun (l, _, _) -> l) emitted));
  Dirtybits.note_write db ~region ~addr:(base + 128) ~len:8;
  Alcotest.(check bool) "requeued" true (Dirtybits.queue_length db > 0);
  Dirtybits.reset_region db region;
  Alcotest.(check int) "reset drops queued writes" 0 (Dirtybits.queue_length db);
  let counts, emitted =
    lines_of_scan db ~region ~base ~lo:0 ~n:nlines ~stamp:(Timestamp.initial + 20)
      ~select:(Dirtybits.Transfer Timestamp.never_seen)
  in
  Alcotest.(check int) "nothing left to consume" 0 counts.Dirtybits.queue_entries;
  Alcotest.(check int) "nothing emitted after reset" 0 (List.length emitted)

(* --- the space accessor cache ------------------------------------------- *)

let test_space_cache_coherence () =
  let space = Space.create ~region_size:4096 ~nprocs:2 () in
  (* three full regions: each 4096-byte allocation fills one *)
  let a = Space.alloc space ~kind:Region.Shared ~line_size:64 4096 in
  let b = Space.alloc space ~kind:Region.Shared ~line_size:64 4096 in
  let c = Space.alloc space ~kind:Region.Shared ~line_size:64 4096 in
  let areas = [| a; b; c |] in
  Alcotest.(check bool) "three distinct regions" true (a <> b && b <> c);
  (* interleave processors and regions so every access churns the
     per-processor last-hit cache, and mirror into a host-side model *)
  let model = Hashtbl.create 64 in
  let lcg = ref 12345 in
  let next () =
    lcg := ((!lcg * 1103515245) + 12_345) land 0x3FFFFFFF;
    !lcg
  in
  for _ = 1 to 2_000 do
    let proc = next () mod 2 in
    let addr = areas.(next () mod 3) + (next () mod 512 * 8) in
    if next () mod 3 = 0 then begin
      let v = next () in
      Space.set_int space ~proc addr v;
      Hashtbl.replace model (proc, addr) v
    end
    else
      let expect = match Hashtbl.find_opt model (proc, addr) with Some v -> v | None -> 0 in
      Alcotest.(check int) "cached read == model" expect (Space.get_int space ~proc addr)
  done;
  (* full sweep: the cache must never have served one processor another
     processor's backing, or one region another's *)
  Hashtbl.iter
    (fun (proc, addr) v ->
      Alcotest.(check int) "final sweep" v (Space.get_int space ~proc addr))
    model;
  (* boundary probes with a hot cache: in-region limits work, crossers
     and runs off the map fail loudly *)
  ignore (Space.get_int space ~proc:0 (a + 4096 - 8));
  (match Space.read_bytes space ~proc:0 (a + 4088) ~len:16 with
  | _ -> Alcotest.fail "read across the a/b boundary must raise"
  | exception Space.Crosses_region { addr; len; last } ->
      Alcotest.(check int) "crosser addr" (a + 4088) addr;
      Alcotest.(check int) "crosser len" 16 len;
      Alcotest.(check int) "crosser last" (a + 4103) last);
  (match Space.backing_slice space ~proc:1 (b + 4000) ~len:200 with
  | _ -> Alcotest.fail "slice across the b/c boundary must raise"
  | exception Space.Crosses_region _ -> ());
  match Space.validate_range space (c + 4088) 16 with
  | _ -> Alcotest.fail "running off mapped memory must raise"
  | exception Space.Unmapped last -> Alcotest.(check int) "unmapped last" (c + 4103) last

(* --- VM zero-copy collect at a region boundary -------------------------- *)

(* The migrated-bucket shape: a bucket's two areas live in adjacent
   regions.  With pages no larger than a region, both areas trap, diff
   and collect normally; with a page spanning the two regions, every
   zero-copy page view must fail loudly rather than mis-diff. *)

let test_vm_collect_both_bucket_areas () =
  let space = Space.create ~region_size:4096 ~nprocs:1 () in
  let area_a = Space.alloc space ~kind:Region.Shared ~line_size:64 4096 in
  let area_b = Space.alloc space ~kind:Region.Shared ~line_size:64 4096 in
  let vm = Vm_state.create ~page_size:4096 in
  let counters = Counters.create () in
  let cost = Cost_model.default in
  let write addr v =
    ignore (Vm_state.on_write vm ~space ~proc:0 ~counters ~cost ~addr);
    Space.set_int space ~proc:0 addr v
  in
  write area_a 17;
  write (area_a + 256) 18;
  write area_b 19;
  let collect_addrs area =
    let pieces, _ns =
      Vm_state.collect vm ~space ~proc:0 ~counters ~cost ~ranges:[ Range.v area 4096 ]
    in
    (* the diff engine emits word-granular runs: one piece per write here *)
    List.map (fun (p : Midway.Payload.vm_piece) -> p.Midway.Payload.addr) pieces
    |> List.sort compare
  in
  Alcotest.(check (list int)) "area a collects exactly its writes"
    [ area_a; area_a + 256 ] (collect_addrs area_a);
  Alcotest.(check (list int)) "area b collects exactly its writes" [ area_b ]
    (collect_addrs area_b)

let test_vm_collect_crosses_region_is_loud () =
  let space = Space.create ~region_size:4096 ~nprocs:1 () in
  let _a = Space.alloc space ~kind:Region.Shared ~line_size:64 4096 in
  let b = Space.alloc space ~kind:Region.Shared ~line_size:64 4096 in
  let _c = Space.alloc space ~kind:Region.Shared ~line_size:64 4096 in
  let vm = Vm_state.create ~page_size:8192 in
  let counters = Counters.create () in
  let cost = Cost_model.default in
  (* page 1 (8192..16383) covers areas b and c: the fault-time page
     snapshot must refuse the crossing view *)
  (match Vm_state.on_write vm ~space ~proc:0 ~counters ~cost ~addr:b with
  | _ -> Alcotest.fail "faulting a region-crossing page must raise"
  | exception Space.Crosses_region _ -> ());
  (* force the page dirty behind the state's back, as a migration-style
     rebind would after the layout changed under a stale page table, and
     check the collect-side zero-copy view is just as loud *)
  (match
     Page_table.fault_on_write (Vm_state.page_table vm) ~addr:b
       ~contents:(Bytes.create 8192)
   with
  | Some _ -> ()
  | None -> Alcotest.fail "page was expected to be write-protected");
  match Vm_state.collect vm ~space ~proc:0 ~counters ~cost ~ranges:[ Range.v b 64 ] with
  | _ -> Alcotest.fail "collecting across a region boundary must raise"
  | exception Space.Crosses_region { addr; len; _ } ->
      Alcotest.(check int) "the page base" 8192 addr;
      Alcotest.(check int) "the page length" 8192 len

(* --- mixed-backend machines converge like pure ones --------------------- *)

(* Four lock areas, each filling its own 4 KB region; every processor
   does commutative lock-guarded adds, so the converged image is
   schedule- and backend-independent.  A striped machine (regions
   alternating rt/vm) must produce the identical image, and per-region
   collect accounting must sum exactly to the processors' collect_time
   counters. *)

let run_mixed_program ~nprocs ~seed cfg =
  let areas = 4 and cells = 16 in
  let machine = R.create cfg in
  let bases = Array.init areas (fun _ -> R.alloc machine ~line_size:64 4096) in
  let locks =
    Array.init areas (fun a ->
        R.new_lock machine ~owner:(a mod nprocs) [ Range.v bases.(a) (cells * 8) ])
  in
  let bar = R.new_barrier machine [] in
  R.run machine (fun ctx ->
      let me = R.id ctx in
      for round = 0 to 3 do
        for a = 0 to areas - 1 do
          if (a + me + round) mod 2 = 0 then begin
            R.acquire ctx locks.(a);
            let cell = (seed + a + (round * 7) + me) mod cells in
            let addr = bases.(a) + (cell * 8) in
            R.write_int ctx addr (R.read_int ctx addr + 1 + ((seed + me) mod 5));
            R.release ctx locks.(a)
          end
        done;
        R.barrier ctx bar
      done;
      Array.iter
        (fun l ->
          R.acquire_read ctx l;
          R.release ctx l)
        locks);
  let image =
    List.concat_map
      (fun proc ->
        List.concat_map
          (fun a ->
            List.init cells (fun i ->
                Space.get_int (R.space machine) ~proc (bases.(a) + (i * 8))))
          (List.init areas Fun.id))
      (List.init nprocs Fun.id)
  in
  (machine, image)

let region_accounting_consistent machine =
  let per_region = List.fold_left (fun acc (_, ns) -> acc + ns) 0 (R.region_collect_ns machine) in
  let per_proc =
    Array.fold_left (fun acc c -> acc + c.Counters.collect_time_ns) 0 (R.all_counters machine)
  in
  per_region = per_proc

let mixed_digest_prop =
  QCheck.Test.make ~name:"striped rt/vm machine matches pure-backend memory" ~count:12
    QCheck.(pair (int_range 2 4) (int_range 0 999))
    (fun (nprocs, seed) ->
      let cfg backend = { (Config.make backend ~nprocs) with Config.region_size = 4096 } in
      let m_rt, img_rt = run_mixed_program ~nprocs ~seed (cfg Config.Rt) in
      let m_vm, img_vm = run_mixed_program ~nprocs ~seed (cfg Config.Vm) in
      let m_mix, img_mix =
        run_mixed_program ~nprocs ~seed
          { (cfg Config.Rt) with Config.striped = Some Config.Vm }
      in
      List.for_all (fun m -> R.check_invariants m = []) [ m_rt; m_vm; m_mix ]
      && R.region_assignments m_mix <> []  (* odd regions really run vm *)
      && List.for_all region_accounting_consistent [ m_rt; m_vm; m_mix ]
      && img_rt = img_vm && img_rt = img_mix)

(* --- the policy controller ---------------------------------------------- *)

let cost = Cost_model.default

(* A rebinding-heavy window: full chunks ship diff-free under VM, so
   est_vm stays 0 while est_rt pays a template per word. *)
let feed_rebounds p ~region n =
  for _ = 1 to n do
    Policy.note_collect p ~region ~line_size:64 ~bound_bytes:4096 ~payload_bytes:4096
      ~payload_pages:1 ~payload_runs:1 ~rebound:true
  done

(* A fine-sharing window: tiny payloads make VM pay page machinery and a
   whole-page diff per transfer while RT pays a few templates. *)
let feed_fine p ~region n =
  for _ = 1 to n do
    Policy.note_collect p ~region ~line_size:64 ~bound_bytes:64 ~payload_bytes:64
      ~payload_pages:1 ~payload_runs:1 ~rebound:false
  done

let test_policy_window_and_directions () =
  let p = Policy.create ~cost () in
  feed_rebounds p ~region:1 8;
  let collects, est_rt, est_vm = Policy.window p ~region:1 in
  Alcotest.(check int) "window counts" 8 collects;
  Alcotest.(check bool) "rebounds are free under vm" true (est_vm = 0 && est_rt > 0);
  Alcotest.(check bool) "rt region re-elects vm" true
    (Policy.decide p ~region:1 ~current:Config.Rt = Some Config.Vm);
  let collects, est_rt, est_vm = Policy.window p ~region:1 in
  Alcotest.(check (list int)) "decide closes the window" [ 0; 0; 0 ]
    [ collects; est_rt; est_vm ];
  feed_fine p ~region:2 8;
  let _, est_rt, est_vm = Policy.window p ~region:2 in
  Alcotest.(check bool) "fine sharing is cheaper under rt" true (est_rt < est_vm);
  Alcotest.(check bool) "vm region re-elects rt" true
    (Policy.decide p ~region:2 ~current:Config.Vm = Some Config.Rt);
  (* regions are independent: region 1's history never leaked into 2 *)
  feed_fine p ~region:3 8;
  Alcotest.(check bool) "rt region with rt-friendly window stays" true
    (Policy.decide p ~region:3 ~current:Config.Rt = None)

let test_policy_min_window () =
  let p = Policy.create ~cost () in
  feed_rebounds p ~region:1 7;
  Alcotest.(check bool) "7 of 8 transfers: no decision" true
    (Policy.decide p ~region:1 ~current:Config.Rt = None);
  let collects, _, _ = Policy.window p ~region:1 in
  Alcotest.(check int) "an undersized window is not consumed" 7 collects;
  feed_rebounds p ~region:1 1;
  Alcotest.(check bool) "8th transfer arms it" true
    (Policy.decide p ~region:1 ~current:Config.Rt = Some Config.Vm)

let test_policy_min_gain_floor () =
  (* Empty return transfers: est_rt is a few hundred ns of scan, est_vm
     is 0 — an infinite relative margin that saves nothing.  The default
     floor (one page fault) must refuse the switch; with the floor
     removed the same window switches. *)
  let feed p =
    for _ = 1 to 8 do
      Policy.note_collect p ~region:1 ~line_size:64 ~bound_bytes:64 ~payload_bytes:0
        ~payload_pages:0 ~payload_runs:0 ~rebound:false
    done
  in
  let p = Policy.create ~cost () in
  feed p;
  let _, est_rt, est_vm = Policy.window p ~region:1 in
  Alcotest.(check bool) "the window is lopsided but tiny" true
    (est_vm = 0 && est_rt > 0 && est_rt < cost.Cost_model.page_fault_ns);
  Alcotest.(check bool) "no switch for sub-page-fault gain" true
    (Policy.decide p ~region:1 ~current:Config.Rt = None);
  let p = Policy.create ~min_gain_ns:0 ~cost () in
  feed p;
  Alcotest.(check bool) "floorless controller would thrash" true
    (Policy.decide p ~region:1 ~current:Config.Rt = Some Config.Vm)

let test_policy_hysteresis () =
  (* decide must follow the documented inequality exactly, whichever way
     the window leans *)
  let check ~hysteresis_pct ~current feeds expect_name =
    let p = Policy.create ~hysteresis_pct ~min_gain_ns:0 ~min_window:1 ~cost () in
    feeds p;
    let _, est_rt, est_vm = Policy.window p ~region:1 in
    let cur, other, other_b =
      match current with
      | Config.Rt -> (est_rt, est_vm, Config.Vm)
      | _ -> (est_vm, est_rt, Config.Rt)
    in
    let expected =
      if cur * 100 > other * (100 + hysteresis_pct) then Some other_b else None
    in
    Alcotest.(check bool) expect_name true
      (Policy.decide p ~region:1 ~current = expected)
  in
  check ~hysteresis_pct:25 ~current:Config.Rt (fun p -> feed_rebounds p ~region:1 4)
    "rebound window, rt incumbent";
  check ~hysteresis_pct:25 ~current:Config.Vm (fun p -> feed_rebounds p ~region:1 4)
    "rebound window, vm incumbent";
  check ~hysteresis_pct:25 ~current:Config.Vm (fun p -> feed_fine p ~region:1 4)
    "fine window, vm incumbent";
  (* an enormous margin requirement pins the controller down *)
  check ~hysteresis_pct:1_000_000 ~current:Config.Rt
    (fun p -> feed_rebounds p ~region:1 4)
    "unreachable hysteresis never switches"

let test_policy_cooldown () =
  let p = Policy.create ~cooldown:1 ~cost () in
  feed_rebounds p ~region:1 8;
  Alcotest.(check bool) "switches first" true
    (Policy.decide p ~region:1 ~current:Config.Rt = Some Config.Vm);
  Policy.note_switch p ~region:1;
  feed_fine p ~region:1 8;
  Alcotest.(check bool) "the post-switch window is sat out" true
    (Policy.decide p ~region:1 ~current:Config.Vm = None);
  feed_fine p ~region:1 8;
  Alcotest.(check bool) "the next window decides again" true
    (Policy.decide p ~region:1 ~current:Config.Vm = Some Config.Rt)

let test_policy_rejects_unmanaged_backends () =
  let p = Policy.create ~min_window:1 ~cost () in
  feed_fine p ~region:1 1;
  match Policy.decide p ~region:1 ~current:Config.Blast with
  | _ -> Alcotest.fail "blast is not a managed backend"
  | exception Invalid_argument _ -> ()

(* --- manual region re-election ------------------------------------------ *)

let test_manual_switch_safety () =
  let machine = R.create (Config.make Config.Rt ~nprocs:2) in
  let data = R.alloc machine ~line_size:64 256 in
  let lock = R.new_lock machine [ Range.v data 256 ] in
  Alcotest.(check string) "regions start on the machine backend" "rt"
    (Config.backend_name (R.region_backend_at machine ~addr:data));
  R.set_region_backend machine ~addr:data Config.Vm;
  Alcotest.(check string) "re-elected" "vm"
    (Config.backend_name (R.region_backend_at machine ~addr:data));
  Alcotest.(check int) "one committed switch" 1 (R.backend_switches machine);
  Alcotest.(check bool) "assignment listed" true
    (List.exists (fun (_, b) -> b = Config.Vm) (R.region_assignments machine));
  R.set_region_backend machine ~addr:data Config.Vm;
  Alcotest.(check int) "same-backend re-election is a no-op" 1 (R.backend_switches machine);
  (match R.set_region_backend machine ~addr:data Config.Standalone with
  | _ -> Alcotest.fail "standalone is machine-wide only"
  | exception Invalid_argument _ -> ());
  (* the switched region still runs a correct protocol *)
  let held_switch_rejected = ref false in
  R.run machine (fun ctx ->
      for _ = 1 to 20 do
        R.acquire ctx lock;
        if R.id ctx = 0 && not !held_switch_rejected then
          (try R.set_region_backend machine ~addr:data Config.Rt
           with Invalid_argument _ -> held_switch_rejected := true);
        R.write_int ctx data (R.read_int ctx data + 1);
        R.release ctx lock
      done);
  Alcotest.(check bool) "switching under a held binding is rejected" true
    !held_switch_rejected;
  Alcotest.(check int) "all increments survive the vm region" 40
    (Space.get_int (R.space machine) ~proc:lock.Midway.Sync.owner data);
  Alcotest.(check (list string)) "invariants hold" [] (R.check_invariants machine);
  (* back at a safe point: the reverse switch is legal again *)
  R.set_region_backend machine ~addr:data Config.Rt;
  Alcotest.(check int) "switch back committed" 2 (R.backend_switches machine)

let test_vm_fine_machine_not_electable () =
  let machine = R.create (Config.make Config.Vm_fine ~nprocs:2) in
  let data = R.alloc machine ~line_size:64 256 in
  match R.set_region_backend machine ~addr:data Config.Rt with
  | _ -> Alcotest.fail "a vm-fine machine is not per-region electable"
  | exception Invalid_argument _ -> ()

(* --- the adaptive controller end to end ---------------------------------- *)

let test_adaptive_beats_both_pures_on_hybrid () =
  let cfg backend ~adaptive = { (Config.make backend ~nprocs:2) with Config.adaptive } in
  let run c = Hybrid.run c Hybrid.default in
  let pure_rt = run (cfg Config.Rt ~adaptive:false) in
  let pure_vm = run (cfg Config.Vm ~adaptive:false) in
  let adaptive = run (cfg Config.Rt ~adaptive:true) in
  List.iter
    (fun (o : Outcome.t) ->
      Alcotest.(check bool) ("oracle: " ^ o.Outcome.app) true o.Outcome.ok;
      Alcotest.(check (list string)) "invariants" [] (R.check_invariants o.Outcome.machine))
    [ pure_rt; pure_vm; adaptive ];
  let ns (o : Outcome.t) = R.elapsed_ns o.Outcome.machine in
  Alcotest.(check bool) "the controller re-elected at least one region" true
    (R.backend_switches adaptive.Outcome.machine >= 1);
  Alcotest.(check bool) "adaptive beats pure rt" true (ns adaptive < ns pure_rt);
  Alcotest.(check bool) "adaptive beats pure vm" true (ns adaptive < ns pure_vm);
  Alcotest.(check bool) "per-region accounting sums to the counters" true
    (region_accounting_consistent adaptive.Outcome.machine)

let test_adaptive_preserves_ecgen_digests () =
  (* whatever the controller elects, converged memory is the pure run's *)
  List.iter
    (fun (backend, seed) ->
      let program = Ecgen.generate ~seed ~nprocs:3 () in
      let base = Config.make backend ~nprocs:3 in
      let off = Ecgen.run program base in
      let on = Ecgen.run program { base with Config.adaptive = true } in
      Alcotest.(check bool) "fixed run ok" true off.Workload.ok;
      Alcotest.(check bool) "adaptive run ok" true on.Workload.ok;
      Alcotest.(check string)
        (Printf.sprintf "digest unchanged (%s, seed %d)" (Config.backend_name backend) seed)
        off.Workload.digest on.Workload.digest)
    [ (Config.Rt, 1); (Config.Rt, 2); (Config.Vm, 1); (Config.Vm, 3) ]

let () =
  Alcotest.run "hybrid"
    [
      ( "dirtybits hot path",
        [
          qtest (scan_matches_model Config.Plain);
          qtest (scan_matches_model Config.Two_level);
          Alcotest.test_case "update-queue bookkeeping" `Quick test_update_queue_bookkeeping;
        ] );
      ( "space cache",
        [ Alcotest.test_case "last-hit cache coherence" `Quick test_space_cache_coherence ] );
      ( "vm region boundaries",
        [
          Alcotest.test_case "both bucket areas collect" `Quick
            test_vm_collect_both_bucket_areas;
          Alcotest.test_case "crossing page fails loudly" `Quick
            test_vm_collect_crosses_region_is_loud;
        ] );
      ("mixed backends", [ qtest mixed_digest_prop ]);
      ( "policy",
        [
          Alcotest.test_case "window and both directions" `Quick
            test_policy_window_and_directions;
          Alcotest.test_case "min window" `Quick test_policy_min_window;
          Alcotest.test_case "min gain floor" `Quick test_policy_min_gain_floor;
          Alcotest.test_case "hysteresis" `Quick test_policy_hysteresis;
          Alcotest.test_case "cooldown" `Quick test_policy_cooldown;
          Alcotest.test_case "unmanaged backends rejected" `Quick
            test_policy_rejects_unmanaged_backends;
        ] );
      ( "region election",
        [
          Alcotest.test_case "manual switch safety" `Quick test_manual_switch_safety;
          Alcotest.test_case "vm-fine not electable" `Quick test_vm_fine_machine_not_electable;
        ] );
      ( "adaptive end to end",
        [
          Alcotest.test_case "hybrid workload win" `Quick
            test_adaptive_beats_both_pures_on_hybrid;
          Alcotest.test_case "ecgen digests unchanged" `Quick
            test_adaptive_preserves_ecgen_digests;
        ] );
    ]
