(* Tests for ECLint, the static entry-consistency analyzer: directed
   IR programs per diagnostic class, the lock-order pass, the hygiene
   lints, the workloads' IR lifts, and the soundness contract against
   ECSan — statically over 200+ random Ecgen programs (a buggy
   program's stripped add must always be in the may-race set, a clean
   one must produce zero warnings) and dynamically (every violation
   ECSan reports on a real run must have been predicted), with the
   measured precision of the static set printed. *)

module Config = Midway.Config
module Engine = Midway_sched.Engine
module Range = Midway_check.Range
module Diag = Midway_check.Diag
module Ir = Midway_analyze.Ir
module Analyze = Midway_analyze.Analyze
module Explore = Midway_explore.Explore
module Workload = Midway_explore.Workload
module Ecgen = Midway_explore.Ecgen

let qtest = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Helpers                                                             *)
(* ------------------------------------------------------------------ *)

let r8 lo = Range.v lo 8

let prog ?(name = "t") ?(locks = []) ?(barriers = []) ~nprocs rounds =
  { Ir.name; nprocs; locks; barriers; rounds }

let warn_slugs (r : Analyze.report) =
  List.map (fun (f : Analyze.finding) -> Analyze.class_slug f.Analyze.cls) r.Analyze.warnings

let lint_slugs (r : Analyze.report) =
  List.sort_uniq compare
    (List.map (fun (f : Analyze.finding) -> Analyze.class_slug f.Analyze.cls) r.Analyze.lints)

let acq ?(mode = Ir.Exclusive) lock = Ir.Acquire { lock; mode }

let find_warning r slug =
  match
    List.find_opt
      (fun (f : Analyze.finding) -> Analyze.class_slug f.Analyze.cls = slug)
      r.Analyze.warnings
  with
  | Some f -> f
  | None -> Alcotest.fail (Printf.sprintf "no [%s] warning in:\n%s" slug (Analyze.render r))

(* ------------------------------------------------------------------ *)
(* Directed programs, one per diagnostic class                         *)
(* ------------------------------------------------------------------ *)

let test_unsynchronized_read_and_write () =
  (* p1 reads, then a variant writes, lock-bound data bare *)
  let read_prog =
    prog ~nprocs:2
      ~locks:[ (0, [ r8 0 ]) ]
      [| [| [ acq 0; Ir.Write (r8 0); Ir.Release 0 ]; [ Ir.Read (r8 0) ] |] |]
  in
  let r = Analyze.analyze read_prog in
  Alcotest.(check (list string)) "bare read of bound data" [ "unsynchronized-access" ]
    (warn_slugs r);
  let f = find_warning r "unsynchronized-access" in
  Alcotest.(check int) "names the binding lock" 0 f.Analyze.sync;
  Alcotest.(check (list int)) "implicates the reader" [ 1 ] f.Analyze.procs;
  Alcotest.(check (pair int int)) "address hull" (0, 8) (f.Analyze.lo, f.Analyze.hi);
  let write_prog =
    prog ~nprocs:2
      ~locks:[ (0, [ r8 0 ]) ]
      [| [| [ acq 0; Ir.Write (r8 0); Ir.Release 0 ]; [ Ir.Write (r8 0) ] |] |]
  in
  Alcotest.(check (list string)) "bare write of bound data" [ "unsynchronized-access" ]
    (warn_slugs (Analyze.analyze write_prog));
  (* a bare read of data nobody writes is not a race: reads only
     conflict with a possible write *)
  let read_only =
    prog ~nprocs:2
      ~locks:[ (0, [ r8 0 ]) ]
      [| [| [ acq 0 ~mode:Ir.Shared; Ir.Read (r8 0); Ir.Release 0 ]; [ Ir.Read (r8 0) ] |] |]
  in
  Alcotest.(check bool) "no writer, no race (only the never-written lint)" true
    ((Analyze.analyze read_only).Analyze.warnings = [])

let test_write_under_shared_hold () =
  let p =
    prog ~nprocs:2
      ~locks:[ (0, [ r8 0 ]) ]
      [|
        [|
          [ acq 0 ~mode:Ir.Shared; Ir.Write (r8 0); Ir.Release 0 ];
          [ acq 0 ~mode:Ir.Shared; Ir.Read (r8 0); Ir.Release 0 ];
        |];
      |]
  in
  let r = Analyze.analyze p in
  Alcotest.(check (list string)) "store through a read-mode hold" [ "write-under-shared-hold" ]
    (warn_slugs r);
  Alcotest.(check int) "sync" 0 (find_warning r "write-under-shared-hold").Analyze.sync

let test_unbound_shared_data () =
  let p = prog ~nprocs:2 [| [| [ Ir.Write (r8 0) ]; [ Ir.Read (r8 0) ] |] |] in
  let r = Analyze.analyze p in
  Alcotest.(check (list string)) "never-bound conflict" [ "unbound-shared-data" ] (warn_slugs r);
  Alcotest.(check (list int)) "both processors" [ 0; 1 ]
    (find_warning r "unbound-shared-data").Analyze.procs;
  (* one processor alone, or two readers, is private use — no warning *)
  let solo = prog ~nprocs:2 [| [| [ Ir.Write (r8 0); Ir.Read (r8 0) ]; [] |] |] in
  Alcotest.(check (list string)) "sole toucher is private" [] (warn_slugs (Analyze.analyze solo))

let test_misclassified_private_store () =
  let p =
    prog ~nprocs:2
      [| [| [ Ir.Write_private (r8 0) ]; [] |]; [| []; [ Ir.Read (r8 0) ] |] |]
  in
  let r = Analyze.analyze p in
  Alcotest.(check (list string)) "private store read by another proc"
    [ "misclassified-private-store" ] (warn_slugs r);
  Alcotest.(check (list int)) "store and reader" [ 0; 1 ]
    (find_warning r "misclassified-private-store").Analyze.procs;
  (* unread private stores are fine *)
  let quiet = prog ~nprocs:2 [| [| [ Ir.Write_private (r8 0) ]; [] |] |] in
  Alcotest.(check (list string)) "unread private store" [] (warn_slugs (Analyze.analyze quiet))

let test_stale_binding_access () =
  (* round 0 shrinks lock 0's binding [0,16) -> [0,8); round 1 writes
     the full former range under the lock: [8,16) is retired *)
  let p =
    prog ~nprocs:2
      ~locks:[ (0, [ Range.v 0 16 ]) ]
      [|
        [| [ acq 0; Ir.Rebind { lock = 0; ranges = [ r8 0 ] }; Ir.Release 0 ]; [] |];
        [| []; [ acq 0; Ir.Write (Range.v 0 16); Ir.Release 0 ] |];
      |]
  in
  let r = Analyze.analyze p in
  Alcotest.(check (list string)) "write through the retired half" [ "stale-binding-access" ]
    (warn_slugs r);
  let f = find_warning r "stale-binding-access" in
  Alcotest.(check int) "names the rebound lock" 0 f.Analyze.sync;
  Alcotest.(check (pair int int)) "only the retired bytes" (8, 16) (f.Analyze.lo, f.Analyze.hi);
  (* the rebinder itself may rely on its own new version while held *)
  let own =
    prog ~nprocs:2
      ~locks:[ (0, [ r8 0 ]) ]
      [|
        [|
          [ acq 0; Ir.Rebind { lock = 0; ranges = [ Range.v 0 16 ] };
            Ir.Write (Range.v 0 16); Ir.Release 0 ];
          [];
        |];
      |]
  in
  Alcotest.(check (list string)) "rebinder trusts its own grown binding" []
    (warn_slugs (Analyze.analyze own))

let test_barrier_same_round_writes () =
  let p =
    prog ~nprocs:3
      ~barriers:[ (0, [ r8 0 ]) ]
      [| [| [ Ir.Write (r8 0) ]; [ Ir.Write (r8 0) ]; [ Ir.Read (r8 0) ] |] |]
  in
  let r = Analyze.analyze p in
  Alcotest.(check (list string)) "same-round barrier write/write" [ "unsynchronized-access" ]
    (warn_slugs r);
  let f = find_warning r "unsynchronized-access" in
  Alcotest.(check int) "names the barrier" 0 f.Analyze.sync;
  Alcotest.(check (list int)) "both writers, not the reader" [ 0; 1 ] f.Analyze.procs;
  (* writers in different rounds are ordered by the crossing: clean *)
  let staged =
    prog ~nprocs:2
      ~barriers:[ (0, [ r8 0 ]) ]
      [| [| [ Ir.Write (r8 0) ]; [] |]; [| []; [ Ir.Write (r8 0); Ir.Read (r8 0) ] |] |]
  in
  Alcotest.(check (list string)) "barrier-ordered writes" []
    (warn_slugs (Analyze.analyze staged))

(* ------------------------------------------------------------------ *)
(* The lock-order pass                                                 *)
(* ------------------------------------------------------------------ *)

let nest a b = [ acq a; Ir.Work 100; acq b; Ir.Release b; Ir.Release a ]

let test_lock_cycle_detected () =
  let p =
    prog ~nprocs:2
      ~locks:[ (0, [ r8 0 ]); (1, [ r8 8 ]) ]
      [| [| nest 0 1; nest 1 0 |] |]
  in
  let r = Analyze.analyze p in
  let cs = Analyze.cycles r in
  Alcotest.(check int) "one cycle" 1 (List.length cs);
  let c = List.hd cs in
  Alcotest.(check (list int)) "both processors implicated" [ 0; 1 ] c.Analyze.procs;
  Alcotest.(check bool) "witness acquisition paths attached" true (c.Analyze.witness <> [])

let test_lock_cycle_needs_same_round () =
  (* opposite nesting orders separated by a barrier cannot deadlock *)
  let p =
    prog ~nprocs:2
      ~locks:[ (0, [ r8 0 ]); (1, [ r8 8 ]) ]
      [| [| nest 0 1; [] |]; [| []; nest 1 0 |] |]
  in
  Alcotest.(check int) "rounds are ordered: no cycle" 0
    (List.length (Analyze.cycles (Analyze.analyze p)))

let test_lock_cycle_needs_two_procs () =
  (* one processor using both orders sequentially never deadlocks *)
  let p =
    prog ~nprocs:2
      ~locks:[ (0, [ r8 0 ]); (1, [ r8 8 ]) ]
      [| [| nest 0 1 @ nest 1 0; [] |] |]
  in
  Alcotest.(check int) "single-processor cycle filtered" 0
    (List.length (Analyze.cycles (Analyze.analyze p)))

(* ------------------------------------------------------------------ *)
(* Hygiene lints                                                       *)
(* ------------------------------------------------------------------ *)

let test_hygiene_lints () =
  let p =
    prog ~nprocs:2
      ~locks:
        [
          (0, [ Range.v 0 16 ]);  (* overlaps lock 1 on [8,16) *)
          (1, [ Range.v 8 16 ]);
          (2, [ Range.v 32 0 ]);  (* degenerate *)
          (3, [ Range.v 40 8 ]);  (* never written *)
        ]
      [|
        [|
          [ acq 0; Ir.Write (Range.v 0 16); Ir.Release 0 ];
          (* same-range rebind under a shared hold: hygiene only *)
          [ acq 3 ~mode:Ir.Shared; Ir.Rebind { lock = 3; ranges = [ Range.v 40 8 ] };
            Ir.Release 3 ];
        |];
      |]
  in
  let r = Analyze.analyze p in
  Alcotest.(check (list string)) "lints never join the warning set" [] (warn_slugs r);
  Alcotest.(check (list string)) "all four hygiene classes"
    [
      "degenerate-binding"; "never-written-binding"; "overlapping-bindings";
      "rebind-without-exclusive-hold";
    ]
    (lint_slugs r)

let test_validate_rejects_malformed () =
  let undeclared = prog ~nprocs:1 [| [| [ acq 7 ] |] |] in
  Alcotest.(check bool) "undeclared lock id" true (Ir.validate undeclared <> []);
  Alcotest.check_raises "analyze refuses a malformed program"
    (Invalid_argument
       "Analyze.analyze: malformed program: round 0 p0: acquire(7,exclusive) references \
        undeclared lock 7")
    (fun () -> ignore (Analyze.analyze undeclared))

(* ------------------------------------------------------------------ *)
(* The workloads' IR lifts                                             *)
(* ------------------------------------------------------------------ *)

let static_of w =
  match Explore.static_report ~nprocs:4 w with
  | Some r -> r
  | None -> Alcotest.fail (w.Workload.name ^ " lost its IR lift")

let test_clean_workloads_are_statically_clean () =
  List.iter
    (fun w ->
      let r = static_of w in
      Alcotest.(check (list string)) (w.Workload.name ^ " has zero static warnings") []
        (warn_slugs r))
    (Explore.clean_workloads () @ [ Ecgen.workload ~seed:11 (); Ecgen.workload ~seed:12 () ])

let test_order_sensitive_is_statically_clean () =
  (* the precision story: its bug is a wrong oracle under correct
     locking, invisible to (and rightly unreported by) the analyzer *)
  Alcotest.(check (list string)) "order-sensitive: correct locking, no warning" []
    (warn_slugs (static_of Workload.order_sensitive))

let test_buggy_workloads_are_statically_flagged () =
  let racy = static_of Workload.racy in
  Alcotest.(check bool) "racy predicts unsynchronized-access on lock 0" true
    (Analyze.predicts racy ~cls:Diag.Unsynchronized_access ~sync:0);
  let deadlocky = static_of Workload.deadlocky in
  Alcotest.(check int) "deadlocky has the lock cycle" 1
    (List.length (Analyze.cycles deadlocky));
  Alcotest.(check int) "deadlocky has no may-race" 0
    (List.length (Analyze.may_races deadlocky))

(* ------------------------------------------------------------------ *)
(* Static soundness over random Ecgen programs                         *)
(* ------------------------------------------------------------------ *)

let raw_groups (p : Ecgen.program) =
  Array.to_list p.Ecgen.ops
  |> List.concat_map Array.to_list
  |> List.concat
  |> List.filter_map (function Ecgen.Raw_add { group; _ } -> Some group | _ -> None)
  |> List.sort_uniq compare

(* >= 200 programs: ~count seeds x 2 nprocs choices x (clean, buggy) *)
let static_soundness_over_ecgen =
  QCheck.Test.make ~name:"ecgen x 200+: buggy always flagged, clean never" ~count:60
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      List.for_all
        (fun nprocs ->
          let clean = Ecgen.generate ~seed ~nprocs () in
          let rc = Analyze.analyze (Ecgen.to_ir clean) in
          if rc.Analyze.warnings <> [] then
            QCheck.Test.fail_reportf "seed=%d nprocs=%d: clean program got warnings:\n%s" seed
              nprocs (Analyze.render rc);
          let buggy = Ecgen.generate ~buggy:true ~seed ~nprocs () in
          let rb = Analyze.analyze (Ecgen.to_ir buggy) in
          (match raw_groups buggy with
          | [] -> QCheck.Test.fail_reportf "seed=%d: buggy program has no Raw_add" seed
          | gs ->
              List.iter
                (fun g ->
                  if not (Analyze.predicts rb ~cls:Diag.Unsynchronized_access ~sync:g) then
                    QCheck.Test.fail_reportf
                      "seed=%d nprocs=%d: Raw_add on group %d not in the may-race set:\n%s" seed
                      nprocs g (Analyze.render rb))
                gs);
          true)
        [ 2; 4 ])

(* ------------------------------------------------------------------ *)
(* Dynamic soundness: ECSan never out-diagnoses the analyzer           *)
(* ------------------------------------------------------------------ *)

let seeded_config ?(nprocs = 4) backend sseed =
  let cfg = Config.make backend ~nprocs in
  { cfg with Config.ecsan = true; sched_policy = Engine.Seeded sseed }

let test_dynamic_soundness_and_precision () =
  let subjects =
    [
      Workload.counter ~iters:4;
      Workload.readers_writer ~iters:4;
      Workload.mix ~groups:3 ~iters:4;
      Workload.order_sensitive;
      Workload.racy;
      Workload.deadlocky;
      Ecgen.workload ~seed:3 ();
      Ecgen.workload ~buggy:true ~seed:3 ();
      Ecgen.workload ~buggy:true ~seed:7 ();
    ]
  in
  let dynamic = ref 0 in
  List.iter
    (fun (w : Workload.t) ->
      let report = static_of w in
      List.iter
        (fun sseed ->
          let o = w.Workload.run (seeded_config Config.Rt sseed) in
          match o.Workload.machine with
          | None -> Alcotest.fail (w.Workload.name ^ ": machine lost")
          | Some m ->
              List.iter
                (fun (v : Diag.violation) ->
                  incr dynamic;
                  if not (Analyze.predicts report ~cls:v.Diag.cls ~sync:v.Diag.sync) then
                    Alcotest.fail
                      (Printf.sprintf
                         "%s seed=%d: dynamic [%s] (sync %d) not in the static may-race set:\n%s"
                         w.Workload.name sseed (Diag.class_name v.Diag.cls) v.Diag.sync
                         (Analyze.render report)))
                (Midway.Runtime.check_report m).Midway_check.Report.violations)
        [ 1; 2; 3 ])
    subjects;
  Alcotest.(check bool) "the sweep produced dynamic diagnoses to check" true (!dynamic > 0);
  (* precision of the static set over the warning-bearing prey: hand
     every warning to the explorer and count how many some schedule
     realizes (1.0 here — these warnings are all real) *)
  let confirmed, total =
    List.fold_left
      (fun (c, t) w ->
        match
          Explore.confirm_static ~backends:[ Config.Rt ] ~schedules:4 ~schedule_seed:1
            ~nprocs:4 w
        with
        | None -> (c, t)
        | Some (_, confs) ->
            ( c
              + List.length
                  (List.filter (fun k -> k.Explore.cf_confirmed <> None) confs),
              t + List.length confs ))
      (0, 0)
      [ Workload.racy; Workload.deadlocky; Ecgen.workload ~buggy:true ~seed:3 () ]
  in
  Printf.printf "static precision over the prey set: %d/%d confirmed (%.2f)\n" confirmed total
    (float_of_int confirmed /. float_of_int (max 1 total));
  Alcotest.(check int) "every prey warning is dynamically realized" total confirmed;
  Alcotest.(check bool) "the prey set exercises both warning kinds" true (total >= 3)

let () =
  Alcotest.run "analyze"
    [
      ( "classes",
        [
          Alcotest.test_case "unsynchronized access" `Quick test_unsynchronized_read_and_write;
          Alcotest.test_case "write under shared hold" `Quick test_write_under_shared_hold;
          Alcotest.test_case "unbound shared data" `Quick test_unbound_shared_data;
          Alcotest.test_case "misclassified private store" `Quick
            test_misclassified_private_store;
          Alcotest.test_case "stale binding access" `Quick test_stale_binding_access;
          Alcotest.test_case "barrier same-round writes" `Quick
            test_barrier_same_round_writes;
        ] );
      ( "lock-order",
        [
          Alcotest.test_case "cycle detected with witnesses" `Quick test_lock_cycle_detected;
          Alcotest.test_case "no cycle across rounds" `Quick test_lock_cycle_needs_same_round;
          Alcotest.test_case "single-proc cycle filtered" `Quick test_lock_cycle_needs_two_procs;
        ] );
      ( "hygiene",
        [
          Alcotest.test_case "all four lints" `Quick test_hygiene_lints;
          Alcotest.test_case "validate rejects malformed" `Quick test_validate_rejects_malformed;
        ] );
      ( "workloads",
        [
          Alcotest.test_case "clean set statically clean" `Quick
            test_clean_workloads_are_statically_clean;
          Alcotest.test_case "order-sensitive statically clean" `Quick
            test_order_sensitive_is_statically_clean;
          Alcotest.test_case "prey statically flagged" `Quick
            test_buggy_workloads_are_statically_flagged;
        ] );
      ("soundness-static", [ qtest static_soundness_over_ecgen ]);
      ( "soundness-dynamic",
        [
          Alcotest.test_case "ECSan subset of the static set, with precision" `Quick
            test_dynamic_soundness_and_precision;
        ] );
    ]
