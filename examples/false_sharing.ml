(* False sharing: two processors repeatedly update *adjacent* words, each
   under its own lock.

   Under VM-DSM both words live on the same 4 KB page, so every transfer
   twins and diffs the whole page — the page bounces between the
   processors paying the fault + diff machinery although the processors
   never touch each other's data.  Under RT-DSM the unit of coherency is
   an 8-byte line, so each lock moves exactly its own word.  This is the
   paper's core argument against page-granularity detection.

     dune exec examples/false_sharing.exe
*)

module R = Midway.Runtime
module Range = Midway.Range

let rounds = 50

let run backend =
  let cfg = Ecsan_hook.arm (Midway.Config.make backend ~nprocs:2) in
  let machine = R.create cfg in
  (* two adjacent 8-byte words on the same page, separate locks *)
  let a = R.alloc machine ~line_size:8 8 in
  let b = R.alloc machine ~line_size:8 8 in
  let la = R.new_lock machine [ Range.v a 8 ] in
  let lb = R.new_lock machine [ Range.v b 8 ] in
  R.run machine (fun c ->
      let lock, addr = if R.id c = 0 then (la, a) else (lb, b) in
      (* ping-pong ownership: release and re-acquire so the data moves *)
      let other, other_addr = if R.id c = 0 then (lb, b) else (la, a) in
      for i = 1 to rounds do
        R.acquire c lock;
        R.write_int c addr i;
        R.release c lock;
        (* briefly peek at the neighbour's word to force its transfer *)
        R.acquire c other;
        ignore (R.read_int c other_addr);
        R.release c other;
        R.work_ns c 10_000
      done);
  let avg = Midway_stats.Counters.average (R.all_counters machine) in
  let open Midway_stats.Counters in
  Printf.printf
    "%-6s: %9s simulated | %7.1f KB/proc moved | %4d faults | %4d pages diffed | %5d dirtybit scans\n"
    (Midway.Config.backend_name backend)
    (Midway_util.Units.pp_time (R.elapsed_ns machine))
    (Midway_util.Units.kb_of_bytes avg.data_received_bytes)
    avg.write_faults avg.pages_diffed
    (avg.clean_dirtybits_read + avg.dirty_dirtybits_read);
  Ecsan_hook.finish machine

let () =
  Printf.printf
    "false sharing: 2 processors, adjacent words, separate locks, %d rounds each\n\n" rounds;
  List.iter run [ Midway.Config.Rt; Midway.Config.Vm ];
  print_newline ();
  Printf.printf
    "VM-DSM pays a write fault and a whole-page twin/diff for every round although\n\
     the processors share no data; RT-DSM moves one 8-byte line per transfer.\n"
