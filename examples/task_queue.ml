(* Dynamic work distribution with lock re-binding — quicksort's pattern
   in miniature (paper, section 4).

   A shared queue hands out tasks; each task's lock is *rebound* to the
   block of data the task covers, so acquiring the task lock ships exactly
   that block.  Workers square every element of their block.  The example
   prints how much data moved under RT-DSM and VM-DSM: on a rebound lock
   VM-DSM ships all bound data without diffing, while RT-DSM still scans
   dirtybits — the one pattern where the paper found VM-DSM ahead.

     dune exec examples/task_queue.exe
*)

module R = Midway.Runtime
module Range = Midway.Range

let nprocs = 4

let blocks = 16

let block_elems = 64

let run backend =
  let cfg = Ecsan_hook.arm (Midway.Config.make backend ~nprocs) in
  let machine = R.create cfg in
  let n = blocks * block_elems in
  let data = R.alloc machine ~line_size:8 (n * 8) in
  let elem i = data + (i * 8) in
  (* queue state: next-block cursor, guarded by the queue lock *)
  let cursor = R.alloc machine ~line_size:8 8 in
  let queue_lock = R.new_lock machine [ Range.v cursor 8 ] in
  (* one lock per task slot; rebound to each block as it is handed out *)
  let task_lock = Array.init blocks (fun _ -> R.new_lock machine []) in
  let start_bar = R.new_barrier machine [] in
  let done_bar = R.new_barrier machine [] in
  R.run machine (fun c ->
      if R.id c = 0 then begin
        (* producer: fill the data and bind each block to its task lock *)
        for b = 0 to blocks - 1 do
          R.acquire c task_lock.(b);
          for i = b * block_elems to ((b + 1) * block_elems) - 1 do
            R.write_int c (elem i) (i + 1)
          done;
          R.rebind c task_lock.(b) [ Range.v (elem (b * block_elems)) (block_elems * 8) ];
          R.release c task_lock.(b)
        done;
        R.acquire c queue_lock;
        R.write_int c cursor 0;
        R.release c queue_lock
      end;
      R.barrier c start_bar;
      (* workers: claim blocks until none remain *)
      let running = ref true in
      while !running do
        R.acquire c queue_lock;
        let b = R.read_int c cursor in
        if b >= blocks then begin
          R.release c queue_lock;
          running := false
        end
        else begin
          R.write_int c cursor (b + 1);
          R.release c queue_lock;
          R.acquire c task_lock.(b);
          for i = b * block_elems to ((b + 1) * block_elems) - 1 do
            let v = R.read_int c (elem i) in
            R.write_int c (elem i) (v * v)
          done;
          R.work_ns c 200_000;
          R.release c task_lock.(b)
        end
      done;
      R.barrier c done_bar);
  (* verify: every element squared exactly once *)
  let ok = ref true in
  for b = 0 to blocks - 1 do
    let owner = task_lock.(b).Midway.Sync.owner in
    for i = b * block_elems to ((b + 1) * block_elems) - 1 do
      let v = Midway_memory.Space.get_int (R.space machine) ~proc:owner (elem i) in
      if v <> (i + 1) * (i + 1) then ok := false
    done
  done;
  let avg = Midway_stats.Counters.average (R.all_counters machine) in
  Printf.printf "%-10s %s: %8s simulated, %7.1f KB/proc transferred, %d msgs\n"
    (Midway.Config.backend_name backend)
    (if !ok then "OK    " else "BROKEN")
    (Midway_util.Units.pp_time (R.elapsed_ns machine))
    (Midway_util.Units.kb_of_bytes avg.Midway_stats.Counters.data_received_bytes)
    (Midway_simnet.Net.total_messages (R.net machine));
  Ecsan_hook.finish machine

let () =
  Printf.printf "task queue with lock re-binding: %d blocks of %d words, %d workers\n\n"
    blocks block_elems nprocs;
  List.iter run [ Midway.Config.Rt; Midway.Config.Vm; Midway.Config.Blast ]
