(* Quickstart: a tour of the public API.

   Four simulated processors share a counter and a histogram under entry
   consistency.  The counter is guarded by a lock; the histogram is bound
   to a barrier and each processor owns one slot.  Run with:

     dune exec examples/quickstart.exe
*)

module R = Midway.Runtime
module Range = Midway.Range

let () =
  (* 1. Configure a machine: backend (Rt = the paper's contribution, Vm =
     the page-based baseline) and processor count. *)
  let cfg = Ecsan_hook.arm (Midway.Config.make Midway.Config.Rt ~nprocs:4) in
  let machine = R.create cfg in

  (* 2. Lay out shared memory.  Addresses are plain ints; line_size is the
     software cache-line size — the unit of coherency. *)
  let counter = R.alloc machine ~line_size:8 8 in
  let histogram = R.alloc machine ~line_size:8 (4 * 8) in

  (* 3. Bind data to synchronization objects (entry consistency!): the
     DSM keeps data consistent exactly when you synchronize on its
     guarding object. *)
  let counter_lock = R.new_lock machine [ Range.v counter 8 ] in
  let hist_barrier = R.new_barrier machine [ Range.v histogram 32 ] in

  (* 4. Run one program on every processor. *)
  R.run machine (fun c ->
      let me = R.id c in

      (* Lock-guarded read-modify-write: acquiring the lock ships exactly
         the updates this processor has not yet seen. *)
      for _ = 1 to 10 do
        R.acquire c counter_lock;
        R.write_int c counter (R.read_int c counter + 1);
        R.release c counter_lock;
        (* model some local computation between critical sections *)
        R.work_ns c (10_000 * (me + 1))
      done;

      (* Barrier-bound data: write your slot, cross the barrier, read
         everyone else's. *)
      R.write_int c (histogram + (me * 8)) (1000 + me);
      R.barrier c hist_barrier;
      let sum = ref 0 in
      for p = 0 to 3 do
        sum := !sum + R.read_int c (histogram + (p * 8))
      done;
      if me = 0 then
        Printf.printf "histogram sum seen by p0: %d (expected %d)\n" !sum
          (1000 + 1001 + 1002 + 1003));

  (* 5. Inspect results: simulated time, traffic and the per-processor
     write-detection statistics the paper's tables are made of. *)
  Printf.printf "final counter (at the lock owner's copy): %d\n"
    (Midway_memory.Space.get_int (R.space machine)
       ~proc:counter_lock.Midway.Sync.owner counter);
  Printf.printf "simulated execution time: %s\n"
    (Midway_util.Units.pp_time (R.elapsed_ns machine));
  Printf.printf "messages on the wire: %d\n"
    (Midway_simnet.Net.total_messages (R.net machine));
  let c0 = R.counters machine 0 in
  Printf.printf "p0 dirtybits set: %d, clean reads: %d, dirty reads: %d\n"
    c0.Midway_stats.Counters.dirtybits_set c0.Midway_stats.Counters.clean_dirtybits_read
    c0.Midway_stats.Counters.dirty_dirtybits_read;
  Ecsan_hook.finish machine
