(* Boundary-exchange stencil — sor's sharing pattern, with a cache-line
   size sweep.

   A 1-D heat rod is banded over the processors; only the cells at band
   edges are shared, bound to neighbour-pair barriers.  Under RT-DSM the
   unit of coherency is the software cache line, so the line size chosen
   for the shared cells directly controls how much data each exchange
   moves: this example sweeps it and prints the resulting traffic — the
   paper's "the size of the unit of coherency can be set to meet the
   needs of the application" made visible.

     dune exec examples/stencil.exe
*)

module R = Midway.Runtime
module Range = Midway.Range

let nprocs = 4

let cells = 512

let steps = 20

let run ~line_size =
  let cfg = Ecsan_hook.arm (Midway.Config.make Midway.Config.Rt ~nprocs) in
  let machine = R.create cfg in
  (* each cell is one 8-byte float; allocate per band so we can pick the
     line size of the shared edge cells *)
  let cell_addr = Array.make cells 0 in
  for p = 0 to nprocs - 1 do
    let lo = p * cells / nprocs and hi = (p + 1) * cells / nprocs in
    for i = lo to hi - 1 do
      let shared = (i = lo && p > 0) || (i = hi - 1 && p < nprocs - 1) in
      cell_addr.(i) <- R.alloc machine ~line_size ~private_:(not shared) 8
    done
  done;
  let pair_bar =
    Array.init (nprocs - 1) (fun p ->
        let hi = (p + 1) * cells / nprocs in
        R.new_barrier machine ~participants:2 ~manager:p
          [ Range.v cell_addr.(hi - 1) 8; Range.v cell_addr.(hi) 8 ])
  in
  R.run machine (fun c ->
      let me = R.id c in
      let lo = me * cells / nprocs and hi = (me + 1) * cells / nprocs in
      let shared i = (i = lo && me > 0) || (i = hi - 1 && me < nprocs - 1) in
      let write i v =
        if shared i then R.write_f64 c cell_addr.(i) v
        else R.write_f64_private c cell_addr.(i) v
      in
      for i = lo to hi - 1 do
        write i (float_of_int i)
      done;
      let exchange () =
        if me > 0 then R.barrier c pair_bar.(me - 1);
        if me < nprocs - 1 then R.barrier c pair_bar.(me)
      in
      exchange ();
      for _ = 1 to steps do
        let first = max lo 1 and last = min (hi - 1) (cells - 2) in
        let fresh =
          Array.init (last - first + 1) (fun k ->
              let i = first + k in
              0.5
              *. (R.read_f64 c cell_addr.(i - 1) +. R.read_f64 c cell_addr.(i + 1)))
        in
        Array.iteri (fun k v -> write (first + k) v) fresh;
        R.work_ns c 50_000;
        exchange ()
      done);
  let avg = Midway_stats.Counters.average (R.all_counters machine) in
  Printf.printf "  line size %4d B: %7.2f KB/proc moved, %s simulated\n" line_size
    (Midway_util.Units.kb_of_bytes avg.Midway_stats.Counters.data_received_bytes)
    (Midway_util.Units.pp_time (R.elapsed_ns machine));
  Ecsan_hook.finish machine

let () =
  Printf.printf
    "1-D stencil, %d cells, %d steps, %d processors; only band-edge cells are shared.\n\
     Sweeping the RT-DSM unit of coherency for the shared cells:\n\n"
    cells steps nprocs;
  List.iter (fun line_size -> run ~line_size) [ 8; 64; 512; 4096 ]
