(* ECSan demonstration: five deliberately broken programs, one per
   diagnostic class.

   Each case violates the entry-consistency contract in exactly one way;
   the sanitizer (Config.ecsan = true) must report exactly the intended
   diagnostic — right class, right processor, right addresses.  The
   program prints each report and exits nonzero if any case surprises.

     dune exec examples/races.exe
*)

module R = Midway.Runtime
module Range = Midway.Range
module Diag = Midway_check.Diag
module Report = Midway_check.Report

let cfg = { (Midway.Config.make Midway.Config.Rt ~nprocs:2) with Midway.Config.ecsan = true }

(* Each case builds a fresh 2-processor machine, runs the broken program
   and returns the machine plus the address the bug touches and the
   processor expected at fault. *)

(* (1) unsynchronized-access: p1 stores to lock-bound data without
   acquiring the lock — a lost update waiting to happen. *)
let unsynchronized () =
  let machine = R.create cfg in
  let data = R.alloc machine 8 in
  let lock = R.new_lock machine [ Range.v data 8 ] in
  let start = R.new_barrier machine [] in
  R.run machine (fun c ->
      if R.id c = 0 then begin
        R.acquire c lock;
        R.write_int c data 1;
        R.release c lock;
        R.barrier c start
      end
      else begin
        R.barrier c start;
        R.write_int c data 2 (* BUG: no acquire *)
      end);
  (machine, data, 1)

(* (2) write-under-shared-hold: p1 takes the lock in read mode and
   stores through it anyway. *)
let shared_write () =
  let machine = R.create cfg in
  let data = R.alloc machine 8 in
  let lock = R.new_lock machine [ Range.v data 8 ] in
  let start = R.new_barrier machine [] in
  R.run machine (fun c ->
      if R.id c = 0 then begin
        R.acquire c lock;
        R.write_int c data 1;
        R.release c lock;
        R.barrier c start
      end
      else begin
        R.barrier c start;
        R.acquire_read c lock;
        ignore (R.read_int c data);
        R.write_int c data 2 (* BUG: the hold is shared (read) mode *)
      end;
      if R.id c = 1 then R.release c lock);
  (machine, data, 1)

(* (3) unbound-shared-data: two processors share data that no lock or
   barrier ever binds, so the DSM never makes it consistent. *)
let unbound () =
  let machine = R.create cfg in
  let data = R.alloc machine 8 in
  let start = R.new_barrier machine [] in
  R.run machine (fun c ->
      if R.id c = 0 then begin
        R.write_int c data 41;
        R.barrier c start
      end
      else begin
        R.barrier c start;
        ignore (R.read_int c data) (* BUG: nothing ever binds [data] *)
      end);
  (machine, data, 1)

(* (4) misclassified-private-store: p0 stores through write_int_private
   (no instrumentation emitted) but p1 later reads the data — the
   compiler's private classification was wrong and the store is
   invisible to write detection. *)
let misclassified () =
  let machine = R.create cfg in
  let data = R.alloc machine 8 in
  let start = R.new_barrier machine [] in
  R.run machine (fun c ->
      if R.id c = 0 then begin
        R.write_int_private c data 7;
        (* BUG: p1 reads this *)
        R.barrier c start
      end
      else begin
        R.barrier c start;
        ignore (R.read_int c data)
      end);
  (machine, data, 0)

(* (5) stale-binding-access: p1 rebinds the lock to a prefix of its old
   ranges, then keeps writing the rebound-away suffix. *)
let stale () =
  let machine = R.create cfg in
  let data = R.alloc machine 16 in
  let lock = R.new_lock machine [ Range.v data 16 ] in
  let start = R.new_barrier machine [] in
  R.run machine (fun c ->
      if R.id c = 0 then begin
        R.acquire c lock;
        R.write_int c data 1;
        R.write_int c (data + 8) 2;
        R.release c lock;
        R.barrier c start
      end
      else begin
        R.barrier c start;
        R.acquire c lock;
        R.rebind c lock [ Range.v data 8 ];
        R.write_int c data 10;
        R.write_int c (data + 8) 20;
        (* BUG: no longer bound *)
        R.release c lock
      end);
  (machine, data + 8, 1)

let cases =
  [
    ("unsynchronized-access", Diag.Unsynchronized_access, unsynchronized);
    ("write-under-shared-hold", Diag.Write_under_shared_hold, shared_write);
    ("unbound-shared-data", Diag.Unbound_shared_data, unbound);
    ("misclassified-private-store", Diag.Misclassified_private_store, misclassified);
    ("stale-binding-access", Diag.Stale_binding_access, stale);
  ]

let () =
  let failures = ref 0 in
  List.iter
    (fun (name, expected_cls, build) ->
      let machine, addr, proc = build () in
      let rep = R.check_report machine in
      Printf.printf "=== %s ===\n%s" name (Report.render rep);
      (match rep.Report.violations with
      | [ v ]
        when v.Diag.cls = expected_cls && v.Diag.proc = proc && v.Diag.lo <= addr
             && addr < v.Diag.hi ->
          Printf.printf "as intended: %s by p%d at %#x\n\n" name proc addr
      | vs ->
          incr failures;
          Printf.printf
            "UNEXPECTED: wanted exactly one %s violation by p%d covering %#x, got %d violation(s)\n\n"
            name proc addr (List.length vs)))
    cases;
  if !failures > 0 then begin
    Printf.printf "%d case(s) misbehaved\n" !failures;
    exit 1
  end;
  Printf.printf "all %d seeded races reported exactly as intended\n" (List.length cases)
