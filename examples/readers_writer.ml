(* Non-exclusive (read-mode) locks — Midway's second acquisition mode.

   A writer periodically publishes a snapshot of market data; several
   reader processors acquire the guarding lock in *shared* mode, so they
   hold it concurrently and each receives exactly the updates it has not
   seen.  An exclusive re-acquisition by the writer waits until all
   readers have released.

     dune exec examples/readers_writer.exe
*)

module R = Midway.Runtime
module Range = Midway.Range

let nprocs = 5 (* one writer, four readers *)

let fields = 8

let snapshots = 6

let () =
  let cfg = Ecsan_hook.arm (Midway.Config.make Midway.Config.Rt ~nprocs) in
  let machine = R.create cfg in
  let table = R.alloc machine ~line_size:8 (fields * 8) in
  let lock = R.new_lock machine [ Range.v table (fields * 8) ] in
  let reads = Array.make nprocs 0 in
  R.run machine (fun c ->
      let me = R.id c in
      if me = 0 then
        for version = 1 to snapshots do
          R.acquire c lock;
          for f = 0 to fields - 1 do
            R.write_int c (table + (f * 8)) ((version * 100) + f)
          done;
          R.release c lock;
          (* let the readers pile in before the next snapshot *)
          R.work_ns c 3_000_000
        done
      else
        for _ = 1 to snapshots do
          R.acquire_read c lock;
          (* all fields must belong to one consistent snapshot *)
          let v0 = R.read_int c table / 100 in
          for f = 0 to fields - 1 do
            let v = R.read_int c (table + (f * 8)) in
            if v <> (v0 * 100) + f then
              Printf.printf "TORN SNAPSHOT at reader %d: field %d = %d under version %d\n" me
                f v v0
          done;
          reads.(me) <- reads.(me) + 1;
          R.work_ns c 2_000_000;
          R.release c lock
        done);
  Printf.printf "readers completed %d consistent snapshot reads in %s simulated\n"
    (Array.fold_left ( + ) 0 reads)
    (Midway_util.Units.pp_time (R.elapsed_ns machine));
  let avg = Midway_stats.Counters.average (R.all_counters machine) in
  Printf.printf "data moved per processor: %s (readers fetch only the fields they miss)\n"
    (Midway_util.Units.pp_bytes avg.Midway_stats.Counters.data_received_bytes);
  Ecsan_hook.finish machine
