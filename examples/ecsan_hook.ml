(* Opt-in sanitizer hook shared by the example programs.

   Set MIDWAY_ECSAN=1 in the environment to run any example under ECSan:
   [arm] switches the configuration's [ecsan] flag on, and [finish]
   prints the sanitizer report after the run and exits nonzero if any
   violation was found.  With the variable unset both are no-ops, so the
   examples behave exactly as before. *)

let enabled = Sys.getenv_opt "MIDWAY_ECSAN" <> None

let arm cfg = if enabled then { cfg with Midway.Config.ecsan = true } else cfg

let finish machine =
  if enabled then begin
    let rep = Midway.Runtime.check_report machine in
    print_string (Midway_check.Report.render rep);
    if Midway_check.Report.has_violations rep then exit 1
  end
