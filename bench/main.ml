(* The benchmark harness.

   Three parts:

   1. Bechamel micro-benchmarks of the software analogues of the paper's
      primitive operations (our Table 1, measured on the host) — one
      [Test.make] per primitive, grouped per table.
   2. Regeneration of every table and figure in the paper's evaluation
      (Tables 1-5, Figures 2-4) via the experiment suite.
   3. Ablations of the design choices DESIGN.md calls out: the RT
      trapping organizations of section 3.5, the VM update-log window,
      and the "blast" no-detection strawman.

   4. A wall-clock mode (`bench wallclock`) that times the full
      experiment driver on the host for sor/matmul/water under both RT
      and VM and writes BENCH_wallclock.json — the repo's perf
      trajectory baseline.  See doc/PERFORMANCE.md.

   The experiment scale can be set with BENCH_SCALE (default 0.1; use
   1.0 for the paper's problem sizes) and BENCH_NPROCS (default 8). *)

open Bechamel
open Toolkit

(* ------------------------------------------------------------------ *)
(* Part 1: primitive-operation micro-benchmarks                        *)
(* ------------------------------------------------------------------ *)

module Region = Midway_memory.Region
module Space = Midway_memory.Space
module Diff = Midway_vmem.Diff
module Page_table = Midway_vmem.Page_table

let rt_primitives () =
  let region =
    Region.create ~index:1 ~kind:Region.Shared ~line_size:8 ~region_size:65536 ~nprocs:1
  in
  let db = Midway.Dirtybits.create ~mode:Midway.Config.Plain ~group:64 in
  let base = Region.base region in
  let addr = ref base in
  let dirtybit_set =
    Test.make ~name:"dirtybit-set (word write)"
      (Staged.stage (fun () ->
           Midway.Dirtybits.note_write db ~region ~addr:!addr ~len:8;
           addr := base + ((!addr - base + 8) land 0xFFF)))
  in
  let stamp = ref 2 in
  let scan =
    Test.make ~name:"dirtybit-scan (512 lines)"
      (Staged.stage (fun () ->
           incr stamp;
           ignore
             (Midway.Dirtybits.scan db
                ~region_of:(fun _ -> region)
                ~ranges:[ Midway.Range.v base 4096 ]
                ~stamp:!stamp ~select:(Midway.Dirtybits.Transfer 0)
                ~emit:(fun ~addr:_ ~len:_ ~ts:_ ~fresh:_ ~lines:_ -> ()))))
  in
  let install =
    Test.make ~name:"dirtybit-update (timestamp install)"
      (Staged.stage (fun () ->
           incr stamp;
           Midway.Dirtybits.set_ts db ~region ~addr:base ~ts:!stamp))
  in
  Test.make_grouped ~name:"rt" [ dirtybit_set; scan; install ]

let vm_primitives () =
  let page = Bytes.make 4096 'a' in
  let twin_same = Bytes.copy page in
  let twin_alt = Bytes.copy page in
  for w = 0 to 1023 do
    if w mod 2 = 0 then Bytes.set twin_alt (w * 4) 'b'
  done;
  let pt = Page_table.create ~page_size:4096 in
  let protection_check =
    (* the fast path VM-DSM takes on every instrumented store *)
    Test.make ~name:"protection-check (no fault)"
      (Staged.stage (fun () -> ignore (Page_table.page_of_addr pt 12_345)))
  in
  let fault =
    let pt2 = Page_table.create ~page_size:4096 in
    Test.make ~name:"write-fault (twin + protect)"
      (Staged.stage (fun () ->
           match Page_table.fault_on_write pt2 ~addr:100 ~contents:page with
           | Some p -> Page_table.clean pt2 p
           | None -> assert false))
  in
  let diff_uniform =
    Test.make ~name:"page-diff (uniform)"
      (Staged.stage (fun () -> ignore (Diff.diff ~old_:twin_same ~new_:page ~off:0 ~len:4096)))
  in
  let diff_alternating =
    Test.make ~name:"page-diff (every other word)"
      (Staged.stage (fun () -> ignore (Diff.diff ~old_:twin_alt ~new_:page ~off:0 ~len:4096)))
  in
  let copy =
    Test.make ~name:"page-copy (4 KB twin)"
      (Staged.stage (fun () -> ignore (Bytes.copy page)))
  in
  let twin_compare =
    (* the twin-backend primitive: compare a 4 KB bound range, no
       modifications *)
    let space = Space.create ~nprocs:1 () in
    let a = Space.alloc space ~kind:Region.Shared 4096 in
    let tw = Midway.Twin_state.create () in
    let counters = Midway_stats.Counters.create () in
    Test.make ~name:"twin-compare (4 KB, clean)"
      (Staged.stage (fun () ->
           ignore
             (Midway.Twin_state.collect tw ~space ~proc:0 ~counters
                ~cost:Midway_stats.Cost_model.default ~id:0
                ~ranges:[ Midway.Range.v a 4096 ])))
  in
  Test.make_grouped ~name:"vm"
    [ protection_check; fault; diff_uniform; diff_alternating; copy; twin_compare ]

let substrate_primitives () =
  let heap = Midway_util.Minheap.create () in
  let i = ref 0 in
  let heap_ops =
    Test.make ~name:"event-heap push+pop"
      (Staged.stage (fun () ->
           incr i;
           Midway_util.Minheap.push heap ~key:(!i * 7919 mod 1000) ();
           ignore (Midway_util.Minheap.pop heap)))
  in
  let prng = Midway_util.Prng.create ~seed:1 in
  let prng_ops =
    Test.make ~name:"prng next" (Staged.stage (fun () -> ignore (Midway_util.Prng.bits64 prng)))
  in
  let space = Space.create ~nprocs:1 () in
  let a = Space.alloc space ~kind:Region.Shared 4096 in
  let mem =
    Test.make ~name:"space f64 read+write"
      (Staged.stage (fun () ->
           Space.set_f64 space ~proc:0 a (Space.get_f64 space ~proc:0 a +. 1.0)))
  in
  Test.make_grouped ~name:"substrate" [ heap_ops; prng_ops; mem ]

let run_microbenchmarks () =
  print_endline "=== Part 1: primitive-operation micro-benchmarks (host-native) ===";
  print_endline "(the simulator charges the paper's Table 1 costs; these measure our";
  print_endline " software analogues on this machine)";
  print_newline ();
  let test =
    Test.make_grouped ~name:"primitives"
      [ rt_primitives (); vm_primitives (); substrate_primitives () ]
  in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~kde:(Some 500) () in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] test in
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let ns =
          match Analyze.OLS.estimates ols with Some (e :: _) -> e | _ -> Float.nan
        in
        (name, ns) :: acc)
      results []
    |> List.sort compare
  in
  let t =
    Midway_util.Texttab.create
      ~columns:
        [ ("benchmark", Midway_util.Texttab.Left); ("ns/run", Midway_util.Texttab.Right) ]
  in
  List.iter
    (fun (name, ns) ->
      Midway_util.Texttab.row t [ name; Midway_util.Texttab.fmt_float ~decimals:1 ns ])
    rows;
  print_endline (Midway_util.Texttab.render t)

(* ------------------------------------------------------------------ *)
(* Part 2: the paper's tables and figures                              *)
(* ------------------------------------------------------------------ *)

let run_experiments ~scale ~nprocs =
  Printf.printf "=== Part 2: reproducing the paper's tables and figures (scale %.2f) ===\n\n"
    scale;
  print_endline (Midway_report.Table1.render Midway_stats.Cost_model.default);
  let suite = Midway_report.Suite.run ~nprocs ~scale () in
  print_endline (Midway_report.Fig2.render suite);
  print_endline (Midway_report.Table2.render suite);
  print_endline (Midway_report.Table3.render suite);
  print_endline
    (Midway_report.Sweep.render ~title:"Figure 3: write trapping cost vs page-fault time"
       suite
       (Midway_report.Sweep.trapping_lines suite));
  print_endline (Midway_report.Table4.render suite);
  print_endline
    (Midway_report.Sweep.render
       ~title:"Figure 4: total write detection cost vs page-fault time" suite
       (Midway_report.Sweep.total_lines suite));
  print_endline (Midway_report.Table5.render suite)

(* ------------------------------------------------------------------ *)
(* Part 3: ablations                                                   *)
(* ------------------------------------------------------------------ *)

let ablation_rt_modes ~scale =
  print_endline "=== Part 3a: RT trapping organizations (section 3.5) on sor ===";
  let t =
    Midway_util.Texttab.create
      ~columns:
        [
          ("mode", Midway_util.Texttab.Left);
          ("exec time", Midway_util.Texttab.Right);
          ("trapping", Midway_util.Texttab.Right);
          ("collection", Midway_util.Texttab.Right);
          ("dirtybit reads", Midway_util.Texttab.Right);
        ]
  in
  List.iter
    (fun mode ->
      let cfg =
        { (Midway.Config.make Midway.Config.Rt ~nprocs:8) with Midway.Config.rt_mode = mode }
      in
      let o = Midway_apps.Sor.run cfg (Midway_apps.Sor.scaled scale) in
      assert o.Midway_apps.Outcome.ok;
      let avg = Midway_apps.Outcome.avg_counters o in
      Midway_util.Texttab.row t
        [
          Midway.Config.rt_mode_name mode;
          Midway_util.Units.pp_time (Midway.Runtime.elapsed_ns o.Midway_apps.Outcome.machine);
          Midway_util.Units.pp_time avg.Midway_stats.Counters.trap_time_ns;
          Midway_util.Units.pp_time avg.Midway_stats.Counters.collect_time_ns;
          Midway_util.Texttab.fmt_int
            (avg.Midway_stats.Counters.clean_dirtybits_read
            + avg.Midway_stats.Counters.dirty_dirtybits_read);
        ])
    [ Midway.Config.Plain; Midway.Config.Two_level; Midway.Config.Update_queue ];
  print_endline (Midway_util.Texttab.render t)

let ablation_backends ~scale =
  print_endline "=== Part 3b: detection backends on quicksort (incl. blast strawman) ===";
  let t =
    Midway_util.Texttab.create
      ~columns:
        [
          ("backend", Midway_util.Texttab.Left);
          ("exec time", Midway_util.Texttab.Right);
          ("KB/proc moved", Midway_util.Texttab.Right);
          ("messages", Midway_util.Texttab.Right);
        ]
  in
  List.iter
    (fun backend ->
      let cfg = Midway.Config.make backend ~nprocs:8 in
      let o = Midway_apps.Quicksort.run cfg (Midway_apps.Quicksort.scaled scale) in
      assert o.Midway_apps.Outcome.ok;
      Midway_util.Texttab.row t
        [
          Midway.Config.backend_name backend;
          Midway_util.Units.pp_time (Midway.Runtime.elapsed_ns o.Midway_apps.Outcome.machine);
          Midway_util.Texttab.fmt_float ~decimals:1
            (Midway_apps.Outcome.data_received_kb_per_proc o);
          Midway_util.Texttab.fmt_int
            (Midway_simnet.Net.total_messages
               (Midway.Runtime.net o.Midway_apps.Outcome.machine));
        ])
    [ Midway.Config.Rt; Midway.Config.Vm; Midway.Config.Vm_fine; Midway.Config.Twin; Midway.Config.Blast ];
  print_endline (Midway_util.Texttab.render t)

let ablation_update_log ~scale =
  print_endline "=== Part 3c: VM update-log window (incarnation history) on quicksort ===";
  let t =
    Midway_util.Texttab.create
      ~columns:
        [
          ("window", Midway_util.Texttab.Right);
          ("exec time", Midway_util.Texttab.Right);
          ("KB/proc moved", Midway_util.Texttab.Right);
        ]
  in
  List.iter
    (fun window ->
      let cfg =
        {
          (Midway.Config.make Midway.Config.Vm ~nprocs:8) with
          Midway.Config.update_log_window = window;
        }
      in
      let o = Midway_apps.Quicksort.run cfg (Midway_apps.Quicksort.scaled scale) in
      assert o.Midway_apps.Outcome.ok;
      Midway_util.Texttab.row t
        [
          string_of_int window;
          Midway_util.Units.pp_time (Midway.Runtime.elapsed_ns o.Midway_apps.Outcome.machine);
          Midway_util.Texttab.fmt_float ~decimals:1
            (Midway_apps.Outcome.data_received_kb_per_proc o);
        ])
    [ 1; 4; 16; 64 ];
  print_endline (Midway_util.Texttab.render t)

let ablation_granularity () =
  print_endline
    "=== Part 3d: detection cost vs sharing granularity (256 KB ping-ponged, 3 rounds) ===";
  print_endline
    "(the paper's conclusion: RT overhead does not depend on the granularity of sharing)";
  let t =
    Midway_util.Texttab.create
      ~columns:
        [
          ("items", Midway_util.Texttab.Right);
          ("item size", Midway_util.Texttab.Right);
          ("RT detect (ms)", Midway_util.Texttab.Right);
          ("VM detect (ms)", Midway_util.Texttab.Right);
          ("Twin detect (ms)", Midway_util.Texttab.Right);
        ]
  in
  List.iter
    (fun items ->
      let detect backend =
        let cfg = Midway.Config.make backend ~nprocs:2 in
        let o =
          Midway_apps.Granularity.run cfg { total_bytes = 256 * 1024; items; rounds = 3 }
        in
        assert o.Midway_apps.Outcome.ok;
        let avg = Midway_apps.Outcome.avg_counters o in
        Midway_util.Units.ms_of_ns
          (avg.Midway_stats.Counters.trap_time_ns + avg.Midway_stats.Counters.collect_time_ns)
      in
      Midway_util.Texttab.row t
        [
          string_of_int items;
          Midway_util.Units.pp_bytes (256 * 1024 / items);
          Midway_util.Texttab.fmt_float ~decimals:1 (detect Midway.Config.Rt);
          Midway_util.Texttab.fmt_float ~decimals:1 (detect Midway.Config.Vm);
          Midway_util.Texttab.fmt_float ~decimals:1 (detect Midway.Config.Twin);
        ])
    [ 8; 32; 128; 512; 2048 ];
  print_endline (Midway_util.Texttab.render t)

let ablation_untargetted () =
  print_endline "=== Part 3e: untargetted consistency (section 3.5 'other memory models') ===";
  print_endline
    "(every transfer scans the whole shared space: the two-level and update-queue";
  print_endline " trapping organizations exist for this case)";
  let t =
    Midway_util.Texttab.create
      ~columns:
        [
          ("trapping mode", Midway_util.Texttab.Left);
          ("exec time", Midway_util.Texttab.Right);
          ("trapping", Midway_util.Texttab.Right);
          ("collection", Midway_util.Texttab.Right);
          ("dirtybit reads", Midway_util.Texttab.Right);
        ]
  in
  List.iter
    (fun mode ->
      (* a lock-based microworkload with a large mostly-idle shared space *)
      let cfg =
        {
          (Midway.Config.make Midway.Config.Rt ~nprocs:2) with
          Midway.Config.untargetted = true;
          rt_mode = mode;
        }
      in
      let machine = Midway.Runtime.create cfg in
      let idle = Midway.Runtime.alloc machine (1024 * 1024) in
      ignore idle;
      let hot = Midway.Runtime.alloc machine ~line_size:8 4096 in
      let lock = Midway.Runtime.new_lock machine [ Midway.Range.v hot 4096 ] in
      Midway.Runtime.run machine (fun c ->
          for round = 1 to 20 do
            Midway.Runtime.acquire c lock;
            for w = 0 to 31 do
              Midway.Runtime.write_int c (hot + (w * 8)) ((round * 100) + w)
            done;
            Midway.Runtime.release c lock;
            Midway.Runtime.work_ns c (1_000 * (Midway.Runtime.id c + 1))
          done);
      let avg = Midway_stats.Counters.average (Midway.Runtime.all_counters machine) in
      Midway_util.Texttab.row t
        [
          Midway.Config.rt_mode_name mode;
          Midway_util.Units.pp_time (Midway.Runtime.elapsed_ns machine);
          Midway_util.Units.pp_time avg.Midway_stats.Counters.trap_time_ns;
          Midway_util.Units.pp_time avg.Midway_stats.Counters.collect_time_ns;
          Midway_util.Texttab.fmt_int
            (avg.Midway_stats.Counters.clean_dirtybits_read
            + avg.Midway_stats.Counters.dirty_dirtybits_read);
        ])
    [ Midway.Config.Plain; Midway.Config.Two_level; Midway.Config.Update_queue ];
  print_endline (Midway_util.Texttab.render t)

let ablation_water_styles ~scale =
  print_endline "=== Part 3f: water synchronization styles (barrier phases vs molecule locks) ===";
  let t =
    Midway_util.Texttab.create
      ~columns:
        [
          ("style", Midway_util.Texttab.Left);
          ("backend", Midway_util.Texttab.Left);
          ("exec time", Midway_util.Texttab.Right);
          ("KB/proc moved", Midway_util.Texttab.Right);
          ("remote acquires", Midway_util.Texttab.Right);
        ]
  in
  List.iter
    (fun (style, style_name) ->
      List.iter
        (fun backend ->
          let cfg = Midway.Config.make backend ~nprocs:8 in
          let p = Midway_apps.Water.scaled scale in
          let o = Midway_apps.Water.run cfg { p with Midway_apps.Water.sync = style } in
          assert o.Midway_apps.Outcome.ok;
          let avg = Midway_apps.Outcome.avg_counters o in
          Midway_util.Texttab.row t
            [
              style_name;
              Midway.Config.backend_name backend;
              Midway_util.Units.pp_time
                (Midway.Runtime.elapsed_ns o.Midway_apps.Outcome.machine);
              Midway_util.Texttab.fmt_float ~decimals:1
                (Midway_apps.Outcome.data_received_kb_per_proc o);
              Midway_util.Texttab.fmt_int avg.Midway_stats.Counters.lock_acquires_remote;
            ])
        [ Midway.Config.Rt; Midway.Config.Vm ])
    [
      (Midway_apps.Water.Barrier_phases, "barrier-phases");
      (Midway_apps.Water.Molecule_locks, "molecule-locks");
    ];
  print_endline (Midway_util.Texttab.render t)

(* ------------------------------------------------------------------ *)
(* Part 4: wall-clock mode                                             *)
(* ------------------------------------------------------------------ *)

(* Host wall-clock time of the full experiment driver (machine build,
   simulation, oracle verification) — the number the hot-path work is
   judged against.  The simulated results themselves must not move; this
   measures only how fast the host produces them. *)

module Json = Midway_util.Json

let wallclock_apps =
  [ Midway_report.Suite.Sor; Midway_report.Suite.Matmul; Midway_report.Suite.Water ]

let wallclock_backends = [ Midway.Config.Rt; Midway.Config.Vm ]

let time_run app backend ~scale ~nprocs =
  let cfg = Midway.Config.make backend ~nprocs in
  Gc.compact ();
  let t0 = Unix.gettimeofday () in
  let o = Midway_report.Suite.run_app app cfg ~scale in
  let wall_s = Unix.gettimeofday () -. t0 in
  let name = Midway_report.Suite.app_name app in
  Printf.printf "  %-8s %-3s %8.2f s wall  (%s s simulated, %s)\n%!" name
    (Midway.Config.backend_name backend)
    wall_s
    (Printf.sprintf "%.3f" (Midway_apps.Outcome.elapsed_s o))
    (if o.Midway_apps.Outcome.ok then "ok" else "ORACLE FAILED");
  Json.Obj
    [
      ("app", Json.Str name);
      ("backend", Json.Str (Midway.Config.backend_name backend));
      ("wall_s", Json.Float wall_s);
      ("sim_elapsed_ns", Json.Int (Midway.Runtime.elapsed_ns o.Midway_apps.Outcome.machine));
      ("ok", Json.Bool o.Midway_apps.Outcome.ok);
    ]

let run_wallclock ~scale ~nprocs =
  let out =
    match Sys.getenv_opt "BENCH_OUT" with Some p -> p | None -> "BENCH_wallclock.json"
  in
  let label = match Sys.getenv_opt "BENCH_LABEL" with Some l -> l | None -> "current" in
  Printf.printf "=== Wall-clock benchmark (scale %.2f, %d procs) ===\n%!" scale nprocs;
  let runs =
    List.concat_map
      (fun app ->
        List.map (fun backend -> time_run app backend ~scale ~nprocs) wallclock_backends)
      wallclock_apps
  in
  (* A previous run's file (env BENCH_BASELINE) rides along as the
     baseline section, so before/after timings live in one artifact. *)
  let baseline =
    match Sys.getenv_opt "BENCH_BASELINE" with
    | None -> Json.Null
    | Some path -> (
        let contents =
          let ic = open_in_bin path in
          let len = in_channel_length ic in
          let s = really_input_string ic len in
          close_in ic;
          s
        in
        match Json.member "current" (Json.of_string contents) with
        | Some section -> section
        | None -> Json.Null)
  in
  let doc =
    Json.Obj
      [
        ("schema", Json.Str "midway-wallclock/1");
        ("scale", Json.Float scale);
        ("nprocs", Json.Int nprocs);
        ("baseline", baseline);
        ("current", Json.Obj [ ("label", Json.Str label); ("runs", Json.List runs) ]);
      ]
  in
  let oc = open_out out in
  output_string oc (Json.to_string doc);
  close_out oc;
  Printf.printf "wrote %s\n%!" out

let () =
  let scale =
    match Sys.getenv_opt "BENCH_SCALE" with Some s -> float_of_string s | None -> 0.1
  in
  let nprocs =
    match Sys.getenv_opt "BENCH_NPROCS" with Some s -> int_of_string s | None -> 8
  in
  match Array.to_list Sys.argv with
  | _ :: "wallclock" :: _ -> run_wallclock ~scale ~nprocs
  | _ ->
      run_microbenchmarks ();
      run_experiments ~scale ~nprocs;
      ablation_rt_modes ~scale;
      ablation_backends ~scale;
      ablation_update_log ~scale;
      ablation_granularity ();
      ablation_untargetted ();
      ablation_water_styles ~scale
