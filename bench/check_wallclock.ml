(* Sanity-check a BENCH_wallclock.json artifact: right schema, a
   non-empty run list where every entry has an app/backend/wall_s/
   sim_elapsed_ns/ok field with sane values.  Exits non-zero (with a
   reason on stderr) on any malformation, so @benchsmoke catches a
   broken bench before it lands in the repo. *)

module Json = Midway_util.Json

let die fmt = Printf.ksprintf (fun msg -> prerr_endline msg; exit 1) fmt

let get name conv v =
  match Option.bind (Json.member name v) conv with
  | Some x -> x
  | None -> die "missing or mistyped field %S" name

let () =
  let path = if Array.length Sys.argv > 1 then Sys.argv.(1) else "BENCH_wallclock.json" in
  let contents =
    try
      let ic = open_in_bin path in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      s
    with Sys_error e -> die "cannot read %s: %s" path e
  in
  let doc = try Json.of_string contents with Json.Parse_error e -> die "%s: %s" path e in
  if get "schema" Json.to_str doc <> "midway-wallclock/1" then
    die "%s: unexpected schema" path;
  let scale = get "scale" Json.to_float doc in
  if scale <= 0.0 then die "%s: non-positive scale" path;
  ignore (get "nprocs" Json.to_int doc);
  let current = get "current" (fun v -> Json.member "runs" v) doc in
  let runs = match Json.to_list current with Some l -> l | None -> die "runs not a list" in
  if runs = [] then die "%s: empty run list" path;
  List.iter
    (fun run ->
      let app = get "app" Json.to_str run in
      let backend = get "backend" Json.to_str run in
      let wall = get "wall_s" Json.to_float run in
      let sim = get "sim_elapsed_ns" Json.to_int run in
      let ok = get "ok" Json.to_bool run in
      if wall < 0.0 then die "%s/%s: negative wall time" app backend;
      if sim <= 0 then die "%s/%s: non-positive simulated time" app backend;
      if not ok then die "%s/%s: oracle failed during bench" app backend)
    runs;
  Printf.printf "%s: ok (%d runs at scale %.2f)\n" path (List.length runs) scale
